//! The shared solve-plan engine: assemble the per-layer cluster views **once**, then
//! solve any number of DP problems over them.
//!
//! The paper's three-step approach (Section 1.4) prepares one hierarchical clustering
//! and then solves "the problem of interest in `O(1)` rounds" — repeatable for any
//! number of problems on the same clustering. [`solve_dp`](crate::solve_dp) realizes
//! the `O(1)` bound but re-runs the full member/edge/payload sort-join assembly for
//! every problem, even though almost all of that communication is problem-independent:
//! which elements group into which cluster, the member-tree links, the boundary edges,
//! and the edge kinds depend only on the clustering — never on the problem's inputs,
//! summaries, or labels.
//!
//! A [`SolvePlan`] factors that out. Building the plan runs the per-layer assembly
//! once (charged like the fresh solver's bottom-up pass) and retains
//!
//! * per layer and per machine, the **skeleton view** of every cluster formed there
//!   ([`PlanView`]: members in their assembled order, parent/children links, top and
//!   attach indexes, boundary edges, edge kinds), and
//! * **routing indexes** mapping every element to its member slot, every edge to the
//!   slots reading its input, and every label key to the views reading it.
//!
//! [`SolvePlan::solve`] then runs any [`ClusterDp`] over the cached skeletons,
//! charging only the exchanges that genuinely depend on the problem: one scatter of
//! the node/edge inputs into their slots, one summary-forwarding round per layer going
//! up, and one label-forwarding round per layer coming down. Labels and optima are
//! bit-identical to a fresh [`solve_dp`](crate::solve_dp) — the skeleton member order
//! equals the fresh assembly's order because the sort/join/gather primitives order
//! records by keys only, never by payloads — and solving `K` problems costs one
//! assembly plus `K` cheap evaluation passes instead of `K` full solves.

use crate::problem::{ClusterDp, ClusterView, Member, Payload};
use crate::solver::{build_views, sort_solve_tables, DpSolution, EdgeData, PayloadTable};
use crate::store::SolverStore;
use mpc_engine::par::{par_map, worth_parallelizing};
use mpc_engine::{DistVec, MpcContext, Words};
use std::collections::{BTreeMap, BTreeSet};
use tree_clustering::{Clustering, EdgeKind, Element, ElementId, ElementKind};
use tree_repr::{DirectedEdge, NodeId};

/// The problem-independent skeleton of one cluster view: everything
/// [`ClusterView`] holds except payloads and problem edge inputs.
#[derive(Debug, Clone)]
pub struct PlanView {
    /// The cluster's id.
    pub cluster: ElementId,
    /// The cluster's kind.
    pub kind: ElementKind,
    /// Member skeletons, in the exact order the fresh assembly produces.
    pub members: Vec<PlanMember>,
    /// Index of the top member.
    pub top: usize,
    /// The cluster's outgoing original edge.
    pub out_edge: DirectedEdge,
    /// The cluster's incoming original edge (indegree-1 clusters).
    pub in_edge: Option<DirectedEdge>,
    /// Index of the member the incoming edge attaches to.
    pub attach: Option<usize>,
    /// Kind of the incoming edge.
    pub in_kind: EdgeKind,
    /// `true` when the incoming edge exists in the degree-reduced edge list, i.e. the
    /// fresh solver's in-edge join hits a record (whose input then defaults when the
    /// caller provides none) rather than producing `None`.
    pub has_in_data: bool,
}

/// The problem-independent part of one [`Member`].
#[derive(Debug, Clone)]
pub struct PlanMember {
    /// The clustering element.
    pub element: Element,
    /// Kind of the member's outgoing original edge.
    pub out_kind: EdgeKind,
    /// Index of the parent member.
    pub parent: Option<usize>,
    /// Indices of the child members.
    pub children: Vec<usize>,
}

impl Words for PlanMember {
    fn words(&self) -> usize {
        // element (10) + out_kind + parent + children vec header/entries.
        10 + 1 + 1 + 1 + self.children.len()
    }
}

impl Words for PlanView {
    fn words(&self) -> usize {
        let members: usize = self.members.iter().map(Words::words).sum();
        // cluster, kind, top, out_edge (2), in_edge (1+2), attach, in_kind,
        // has_in_data + the member list.
        10 + members
    }
}

/// Where an element's payload (input or summary) lives: its member slot inside the
/// absorbing cluster's skeleton view. Fields are `pub(crate)` so the snapshot codec
/// (`crate::snapshot`) can persist the routing indexes verbatim.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MemberSlot {
    pub(crate) layer: u32,
    pub(crate) machine: u32,
    pub(crate) view: u32,
    pub(crate) member: u32,
}

/// One skeleton view, addressed by layer/machine/index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ViewSlot {
    pub(crate) layer: u32,
    pub(crate) machine: u32,
    pub(crate) view: u32,
}

/// The problem-independent solve plan of one prepared tree (see the module docs).
///
/// Build it once per [`PreparedTree`](crate::PreparedTree) via
/// [`PreparedTree::plan`](crate::PreparedTree::plan), then run
/// [`solve`](Self::solve) (or [`solve_many`](Self::solve_many)) for every problem.
#[derive(Debug, Clone)]
pub struct SolvePlan {
    pub(crate) num_layers: u32,
    pub(crate) num_machines: usize,
    pub(crate) root: NodeId,
    pub(crate) top_cluster: ElementId,
    /// Machine holding the top cluster's view (where the root label is produced).
    pub(crate) top_machine: usize,
    /// Auxiliary nodes introduced by degree reduction, with the machine holding their
    /// `aux_to_original` record (the source of their `aux_input` payload).
    pub(crate) aux_nodes: Vec<(NodeId, usize)>,
    /// `layers[layer - 1][machine]` — the skeleton views grouped onto `machine` at
    /// `layer`, in assembly order.
    pub(crate) layers: Vec<Vec<Vec<PlanView>>>,
    /// Element id → the member slot its payload must reach (absent only for the top
    /// cluster, whose summary becomes the root summary).
    pub(crate) payload_slot: BTreeMap<ElementId, MemberSlot>,
    /// Edge child → member slots whose `out_input` carries that edge's input.
    pub(crate) out_edge_slots: BTreeMap<NodeId, Vec<MemberSlot>>,
    /// Edge child → views whose `in_input` carries that edge's input.
    pub(crate) in_edge_slots: BTreeMap<NodeId, Vec<ViewSlot>>,
    /// Label key → views reading it as their out-label.
    pub(crate) out_label_readers: BTreeMap<NodeId, Vec<ViewSlot>>,
    /// Label key → views reading it as their in-label. Unlike out-labels, an in-label
    /// may be produced at a layer *below* its reader; the fresh solver then reads
    /// `None`, so deliveries are filtered to readers strictly below the producer.
    pub(crate) in_label_readers: BTreeMap<NodeId, Vec<ViewSlot>>,
}

/// The unit problem used to drive the problem-independent assembly: all payload types
/// are zero-sized, so the plan build charges the structural data movement (elements,
/// edges, member trees) without any problem-specific words.
struct PlanProbe;

impl ClusterDp for PlanProbe {
    type NodeInput = ();
    type EdgeInput = ();
    type Summary = ();
    type Label = ();

    fn summarize(&self, _view: &ClusterView<Self>) {}

    fn label_root(&self, _summary: &()) {}

    fn label_members(&self, view: &ClusterView<Self>, _out: &(), _in: Option<&()>) -> Vec<()> {
        vec![(); view.members.len()]
    }

    fn name(&self) -> &'static str {
        "plan-probe"
    }
}

/// Build the solve plan of a clustering: run the per-layer view assembly once with the
/// zero-sized [`PlanProbe`] problem (the same `build_views` machinery and charges as a
/// fresh solve's bottom-up pass) and record the resulting skeletons and routing
/// indexes. Charged under the `plan-build` phase.
pub(crate) fn build_plan(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    edges: &DistVec<(DirectedEdge, EdgeKind)>,
    aux_to_original: &DistVec<(NodeId, NodeId)>,
) -> SolvePlan {
    ctx.phase("plan-build", |ctx| {
        let machines = ctx.config().num_machines();
        // The set of edge children present in the degree-reduced edge list: a slot is
        // only registered for keys the fresh solver's edge joins would hit.
        let edge_children: BTreeSet<NodeId> = edges.iter().map(|(e, _)| e.child).collect();
        let aux_nodes: Vec<(NodeId, usize)> = aux_to_original
            .chunks()
            .iter()
            .enumerate()
            .flat_map(|(m, chunk)| chunk.iter().map(move |(aux, _)| (*aux, m)))
            .collect();

        let edge_data: DistVec<EdgeData<()>> = edges.clone().map_local(|(e, k)| EdgeData {
            child: e.child,
            kind: *k,
            input: (),
        });
        let tables = sort_solve_tables(ctx, clustering, &edge_data);
        let mut payloads: PayloadTable<PlanProbe> = clustering
            .elements
            .clone()
            .filter_local(|e| e.kind == ElementKind::Node)
            .map_local(|e| (e.id, Payload::Input(())));

        let mut plan = SolvePlan {
            num_layers: clustering.num_layers,
            num_machines: machines,
            root: clustering.root,
            top_cluster: clustering.top_cluster,
            top_machine: 0,
            aux_nodes,
            layers: Vec::with_capacity(clustering.num_layers as usize),
            payload_slot: BTreeMap::new(),
            out_edge_slots: BTreeMap::new(),
            in_edge_slots: BTreeMap::new(),
            out_label_readers: BTreeMap::new(),
            in_label_readers: BTreeMap::new(),
        };

        for layer in 1..=clustering.num_layers {
            let views = build_views::<PlanProbe>(
                ctx, clustering, layer, &payloads, None, &edge_data, &tables,
            );
            if views.is_empty() {
                // mpc-lint: allow(alloc-hygiene) — once per empty layer: O(machines) empty slot vecs, not per-record work
                plan.layers.push(vec![Vec::new(); machines]);
                continue;
            }
            // The probe's summaries keep the payload table shaped exactly like a real
            // solve's, so the next layer's assembly joins charge the same way.
            // mpc-lint: allow(metered-exchange) — probe summaries replace chunk i's views on machine i; no movement
            let summaries: PayloadTable<PlanProbe> = DistVec::from_chunks(
                views
                    .chunks()
                    .iter()
                    .map(|chunk| {
                        chunk
                            .iter()
                            .map(|v| (v.cluster, Payload::Summary(())))
                            // mpc-lint: allow(alloc-hygiene) — per-chunk probe table moves into the DistVec; built once per layer
                            .collect()
                    })
                    // mpc-lint: allow(alloc-hygiene) — outer chunk list, one vec per machine per layer
                    .collect(),
            );
            let mut layer_views: Vec<Vec<PlanView>> = Vec::with_capacity(machines);
            for (machine, chunk) in views.chunks().iter().enumerate() {
                let mut skeletons = Vec::with_capacity(chunk.len());
                for (view_idx, view) in chunk.iter().enumerate() {
                    plan.register(layer, machine, view_idx, view, &edge_children);
                    skeletons.push(PlanView {
                        cluster: view.cluster,
                        kind: view.kind,
                        members: view
                            .members
                            .iter()
                            .map(|m| PlanMember {
                                element: m.element,
                                out_kind: m.out_kind,
                                parent: m.parent,
                                children: m.children.clone(),
                            })
                            // mpc-lint: allow(alloc-hygiene) — plan skeleton outlives the loop; built once per plan, not per solve
                            .collect(),
                        top: view.top,
                        out_edge: view.out_edge,
                        in_edge: view.in_edge,
                        attach: view.attach,
                        in_kind: view.in_kind,
                        has_in_data: view
                            .in_edge
                            .is_some_and(|e| edge_children.contains(&e.child)),
                    });
                }
                layer_views.push(skeletons);
            }
            plan.layers.push(layer_views);
            payloads = payloads.concat_local(summaries);
        }
        plan
    })
}

impl SolvePlan {
    /// Register the routing-index entries of one assembled view.
    fn register(
        &mut self,
        layer: u32,
        machine: usize,
        view_idx: usize,
        view: &ClusterView<PlanProbe>,
        edge_children: &BTreeSet<NodeId>,
    ) {
        let vslot = ViewSlot {
            layer,
            machine: machine as u32,
            view: view_idx as u32,
        };
        if view.cluster == self.top_cluster {
            self.top_machine = machine;
        }
        self.out_label_readers
            .entry(view.out_edge.child)
            .or_default()
            .push(vslot);
        if let Some(in_edge) = view.in_edge {
            self.in_label_readers
                .entry(in_edge.child)
                .or_default()
                .push(vslot);
            if edge_children.contains(&in_edge.child) {
                self.in_edge_slots
                    .entry(in_edge.child)
                    .or_default()
                    .push(vslot);
            }
        }
        for (member_idx, member) in view.members.iter().enumerate() {
            let slot = MemberSlot {
                layer,
                machine: machine as u32,
                view: view_idx as u32,
                member: member_idx as u32,
            };
            self.payload_slot.insert(member.element.id, slot);
            if edge_children.contains(&member.element.out_edge.child) {
                self.out_edge_slots
                    .entry(member.element.out_edge.child)
                    .or_default()
                    .push(slot);
            }
        }
    }

    /// Register the routing-index entries of one cached skeleton view (the
    /// [`register`](Self::register) logic, re-run over a [`PlanView`] during
    /// [`reindex`](Self::reindex)).
    fn register_skeleton(
        &mut self,
        layer: u32,
        machine: usize,
        view_idx: usize,
        view: &PlanView,
        edge_children: &BTreeSet<NodeId>,
    ) {
        let vslot = ViewSlot {
            layer,
            machine: machine as u32,
            view: view_idx as u32,
        };
        if view.cluster == self.top_cluster {
            self.top_machine = machine;
        }
        self.out_label_readers
            .entry(view.out_edge.child)
            .or_default()
            .push(vslot);
        if let Some(in_edge) = view.in_edge {
            self.in_label_readers
                .entry(in_edge.child)
                .or_default()
                .push(vslot);
            if edge_children.contains(&in_edge.child) {
                self.in_edge_slots
                    .entry(in_edge.child)
                    .or_default()
                    .push(vslot);
            }
        }
        for (member_idx, member) in view.members.iter().enumerate() {
            let slot = MemberSlot {
                layer,
                machine: machine as u32,
                view: view_idx as u32,
                member: member_idx as u32,
            };
            self.payload_slot.insert(member.element.id, slot);
            if edge_children.contains(&member.element.out_edge.child) {
                self.out_edge_slots
                    .entry(member.element.out_edge.child)
                    .or_default()
                    .push(slot);
            }
        }
    }

    /// Rebuild every routing index (payload slots, edge-input slots, label readers,
    /// top machine) from the current skeleton views. Host-side, zero rounds: the
    /// indexes are derived data, so after a structural splice it is both simpler and
    /// safer to re-derive them than to patch five maps surgically. Iteration order
    /// (layers → machines → views → members) matches [`build_plan`], so a repaired
    /// plan routes records exactly like a freshly built one.
    fn reindex(&mut self, edge_children: &BTreeSet<NodeId>) {
        self.payload_slot.clear();
        self.out_edge_slots.clear();
        self.in_edge_slots.clear();
        self.out_label_readers.clear();
        self.in_label_readers.clear();
        let layers = std::mem::take(&mut self.layers);
        for (li, layer) in layers.iter().enumerate() {
            for (machine, views) in layer.iter().enumerate() {
                for (view_idx, view) in views.iter().enumerate() {
                    self.register_skeleton(li as u32 + 1, machine, view_idx, view, edge_children);
                }
            }
        }
        self.layers = layers;
    }

    /// Splice a structural repair into the cached skeletons: drop the views of removed
    /// clusters, drop removed members (remapping parent/child/top/attach indexes),
    /// demote clusters whose incoming edge was cut, append the new leaf members, and
    /// rebuild the routing indexes against the post-repair edge set.
    ///
    /// Host-side surgery on cached state — zero rounds; the caller (the incremental
    /// solver's `inc-struct` phase) meters the moved words. Panics if the repair does
    /// not match this plan's clustering (same-generation repair objects only).
    // mpc-cost: rounds(const)
    pub fn apply_repair(
        &mut self,
        repair: &tree_clustering::ClusteringRepair,
        edge_children: &BTreeSet<NodeId>,
    ) {
        for layer in &mut self.layers {
            for views in layer.iter_mut() {
                views.retain(|v| !repair.removed_elements.contains(&v.cluster));
                for view in views.iter_mut() {
                    if let Some(patch) = repair.patches.get(&view.cluster) {
                        if patch.clear_in_edge {
                            view.kind = ElementKind::ClusterIndeg0;
                            view.in_edge = None;
                            view.attach = None;
                            view.in_kind = EdgeKind::Original;
                            view.has_in_data = false;
                        }
                        if !patch.removed_members.is_empty() {
                            splice_member_removals(view, &patch.removed_members);
                        }
                        for leaf in &patch.added {
                            let parent_idx = view
                                .members
                                .iter()
                                .position(|m| m.element.id == leaf.out_edge.parent)
                                .expect("link parent is a member of the absorbing cluster");
                            let idx = view.members.len();
                            view.members.push(PlanMember {
                                element: *leaf,
                                out_kind: EdgeKind::Original,
                                parent: Some(parent_idx),
                                // mpc-lint: allow(alloc-hygiene) — the empty child list is owned by the new member record; ownership leaves the loop with the push
                                children: Vec::new(),
                            });
                            view.members[parent_idx].children.push(idx);
                        }
                    }
                    if !repair.demoted.is_empty() {
                        // Member copies of demoted clusters live in their parent's
                        // view; rewrite them so member-tree acceptance stays sound.
                        for m in &mut view.members {
                            repair.patch_member_record(&mut m.element);
                        }
                    }
                }
            }
        }
        self.aux_nodes
            .retain(|(aux, _)| !repair.removed_aux.contains(aux));
        self.reindex(edge_children);
    }

    /// Number of layers of the underlying clustering.
    // mpc-cost: rounds(const)
    pub fn num_layers(&self) -> u32 {
        self.num_layers
    }

    /// Number of machines the plan was built for (its skeletons are placed on exactly
    /// this machine layout).
    // mpc-cost: rounds(const)
    pub fn num_machines(&self) -> usize {
        self.num_machines
    }

    /// Total number of cached skeleton views across all layers.
    // mpc-cost: rounds(const)
    pub fn num_views(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|layer| layer.iter())
            .map(Vec::len)
            .sum()
    }

    /// Approximate resident size of the plan in machine words: the skeleton views
    /// plus the routing indexes (each slot entry counted at its encoded width). This
    /// is the charge a plan cache levies against its memory budget — an estimate of
    /// what keeping the plan warm costs, not an exact allocator measurement.
    // mpc-cost: rounds(const)
    pub fn resident_words(&self) -> usize {
        let skeletons: usize = self
            .layers
            .iter()
            .flat_map(|layer| layer.iter())
            .flat_map(|views| views.iter())
            .map(Words::words)
            .sum();
        // MemberSlot encodes as 4 words + 1 key word; ViewSlot as 3 + 1.
        let payload_idx = self.payload_slot.len() * 5;
        let member_vecs: usize = self
            .out_edge_slots
            .values()
            .map(|slots| 2 + slots.len() * 4)
            .sum();
        let view_vecs: usize = self
            .in_edge_slots
            .values()
            .chain(self.in_label_readers.values())
            .chain(self.out_label_readers.values())
            .map(|slots| 2 + slots.len() * 3)
            .sum();
        let aux = self.aux_nodes.len() * 2;
        8 + skeletons + payload_idx + member_vecs + view_vecs + aux
    }

    /// Solve one DP problem over the cached plan (same contract as
    /// [`PreparedTree::solve`](crate::PreparedTree::solve)): labels and optima are
    /// bit-identical to a fresh [`solve_dp`](crate::solve_dp), but only the
    /// problem-dependent exchanges are charged — one input scatter, one
    /// summary-forwarding round per layer up, one label-forwarding round per layer
    /// down (phases `plan-inputs` / `plan-up` / `plan-down` under `plan-solve`).
    // mpc-cost: rounds(layers)
    pub fn solve<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        problem: &P,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
    ) -> DpSolution<P> {
        self.solve_impl(ctx, problem, node_inputs, aux_input, edge_inputs, None)
    }

    /// Like [`solve`](Self::solve), but additionally fill a [`SolverStore`] with the
    /// per-cluster views, payloads, and labels of this solve — the store an
    /// [`IncrementalSolver`](../../tree_dp_incremental/struct.IncrementalSolver.html)
    /// needs for batched re-solves. The store contents are identical to what the
    /// fresh [`solve_dp_with_store`](crate::solve_dp_with_store) would retain.
    // mpc-cost: rounds(layers)
    pub fn solve_with_store<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        problem: &P,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
    ) -> (DpSolution<P>, SolverStore<P>) {
        let mut store = SolverStore::new(self.num_layers);
        let solution = self.solve_impl(
            ctx,
            problem,
            node_inputs,
            aux_input,
            edge_inputs,
            Some(&mut store),
        );
        (solution, store)
    }

    /// Solve a batch of same-type problem instances over one plan: the assembly was
    /// paid once at plan-build time, so the batch costs exactly the sum of the cheap
    /// per-problem evaluation passes. (Problems of *different* types are batched the
    /// same way by calling [`solve`](Self::solve) repeatedly on the shared plan.)
    #[allow(clippy::type_complexity)]
    // mpc-cost: rounds(layers)
    pub fn solve_many<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        jobs: &[(
            &P,
            &DistVec<(NodeId, P::NodeInput)>,
            P::NodeInput,
            &DistVec<(NodeId, P::EdgeInput)>,
        )],
    ) -> Vec<DpSolution<P>> {
        jobs.iter()
            .map(|(problem, node_inputs, aux_input, edge_inputs)| {
                self.solve(ctx, *problem, node_inputs, aux_input.clone(), edge_inputs)
            })
            .collect()
    }

    fn solve_impl<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        problem: &P,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
        mut store: Option<&mut SolverStore<P>>,
    ) -> DpSolution<P> {
        assert_eq!(
            self.num_machines,
            ctx.config().num_machines(),
            "SolvePlan was built for a different machine count"
        );
        ctx.phase("plan-solve", |ctx| {
            let machines = self.num_machines;
            let parallel = ctx.config().parallel;
            // Per-view working state, aligned with the skeleton layout.
            let mut state: Vec<Vec<Vec<ViewState<P>>>> = self
                .layers
                .iter()
                .map(|layer| {
                    layer
                        .iter()
                        .map(|views| views.iter().map(ViewState::for_view).collect())
                        .collect()
                })
                .collect();

            // ---- input scatter (1 round): every node/edge input travels straight to
            // its recorded slot; records already on the slot's machine are free.
            ctx.phase("plan-inputs", |ctx| {
                self.scatter_inputs(
                    ctx,
                    node_inputs,
                    &aux_input,
                    edge_inputs,
                    &mut state,
                    store.as_deref_mut(),
                );
            });

            // ---- bottom-up (1 round per layer): summarize locally, forward each
            // summary to its member slot in the absorbing cluster's view. The
            // materialized views of every processed layer stay resident until the
            // top-down pass consumes them, so the memory check tracks the
            // *cumulative* per-machine words, not one layer at a time.
            let mut materialized: Vec<Vec<Vec<ClusterView<P>>>> = Vec::new();
            let mut resident = vec![0usize; machines];
            let mut root_summary: Option<P::Summary> = None;
            for layer in 1..=self.num_layers {
                let li = (layer - 1) as usize;
                if self.layers[li].iter().all(Vec::is_empty) {
                    // mpc-lint: allow(alloc-hygiene) — once per skipped layer: O(machines) empty slots
                    materialized.push(vec![Vec::new(); machines]);
                    continue;
                }
                let views = ctx.phase("plan-up", |ctx| {
                    self.summarize_plan_layer(
                        ctx,
                        layer,
                        problem,
                        &mut state,
                        &mut resident,
                        &mut root_summary,
                        store.as_deref_mut(),
                        parallel,
                    )
                });
                materialized.push(views);
            }
            let root_summary = root_summary.expect("top cluster summarized");

            // ---- top-down (1 round per layer): label locally, forward each produced
            // label to the lower-layer views that read it.
            let root_label = problem.label_root(&root_summary);
            let mut label_chunks: Vec<Vec<(NodeId, P::Label)>> =
                (0..machines).map(|_| Vec::new()).collect();
            label_chunks[self.top_machine].push((self.root, root_label.clone()));
            ctx.phase("plan-down", |ctx| {
                self.deliver_label(
                    ctx,
                    self.root,
                    &root_label,
                    self.top_machine,
                    // The root label is conceptually produced above every layer.
                    self.num_layers + 1,
                    &mut state,
                );
                for layer in (1..=self.num_layers).rev() {
                    let li = (layer - 1) as usize;
                    if self.layers[li].iter().all(Vec::is_empty) {
                        continue;
                    }
                    self.label_plan_layer(
                        ctx,
                        layer,
                        problem,
                        &materialized[li],
                        &mut state,
                        &mut label_chunks,
                        parallel,
                    );
                }
            });

            // mpc-lint: allow(metered-exchange) — label_chunks[i] was produced on machine i by the top-down pass
            let labels = DistVec::from_chunks(label_chunks);
            ctx.check_memory(&labels, "plan/labels");
            if let Some(store) = store {
                for (child, label) in labels.iter() {
                    store.set_label(*child, label.clone());
                }
                store.set_payload(self.top_cluster, Payload::Summary(root_summary.clone()));
                store.set_root(root_label.clone(), root_summary.clone());
            }
            DpSolution {
                labels,
                root_label,
                root_summary,
            }
        })
    }

    /// The input scatter: route node inputs, auxiliary inputs, and edge inputs to
    /// their recorded slots, charging one round with exact moved-word volumes — a
    /// moved payload record is a `(key, Payload)` pair (`2 + input` words, matching
    /// the summary-forwarding charge) and a moved edge record an `EdgeData`-shaped
    /// `(child, kind, input)` (`2 + input` words). Duplicate records follow the
    /// fresh solver exactly: the *slots* keep the first record (join semantics)
    /// while a requested store keeps the last one (`record_payloads` iterates the
    /// whole payload table, so later records overwrite earlier ones there).
    fn scatter_inputs<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: &P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
        state: &mut [Vec<Vec<ViewState<P>>>],
        mut store: Option<&mut SolverStore<P>>,
    ) {
        let machines = self.num_machines;
        let total_records = node_inputs.len() + edge_inputs.len() + self.aux_nodes.len();
        if total_records == 0 {
            return;
        }
        let mut sends = vec![0usize; machines];
        let mut recvs = vec![0usize; machines];
        let place_payload = |src: usize,
                             node: NodeId,
                             input: &P::NodeInput,
                             state: &mut [Vec<Vec<ViewState<P>>>],
                             sends: &mut [usize],
                             recvs: &mut [usize],
                             store: Option<&mut SolverStore<P>>| {
            let Some(slot) = self.payload_slot.get(&node) else {
                return;
            };
            if let Some(store) = store {
                // Last record wins in the store, like the fresh `record_payloads`.
                store.set_payload(node, Payload::Input(input.clone()));
            }
            let cell =
                &mut state[slot.layer as usize - 1][slot.machine as usize][slot.view as usize];
            if cell.payloads[slot.member as usize].is_some() {
                return; // duplicate record: the first one won the slot, like the join
            }
            if slot.machine as usize != src {
                let w = 2 + input.words();
                sends[src] += w;
                recvs[slot.machine as usize] += w;
            }
            cell.payloads[slot.member as usize] = Some(Payload::Input(input.clone()));
        };
        for (src, chunk) in node_inputs.chunks().iter().enumerate() {
            for (node, input) in chunk {
                place_payload(
                    src,
                    *node,
                    input,
                    state,
                    &mut sends,
                    &mut recvs,
                    store.as_deref_mut(),
                );
            }
        }
        for &(aux, src) in &self.aux_nodes {
            place_payload(
                src,
                aux,
                aux_input,
                state,
                &mut sends,
                &mut recvs,
                store.as_deref_mut(),
            );
        }
        for (src, chunk) in edge_inputs.chunks().iter().enumerate() {
            for (child, input) in chunk {
                for slot in self.out_edge_slots.get(child).into_iter().flatten() {
                    let cell = &mut state[slot.layer as usize - 1][slot.machine as usize]
                        [slot.view as usize];
                    if cell.out_inputs[slot.member as usize].is_some() {
                        continue;
                    }
                    if slot.machine as usize != src {
                        let w = 2 + input.words();
                        sends[src] += w;
                        recvs[slot.machine as usize] += w;
                    }
                    cell.out_inputs[slot.member as usize] = Some(input.clone());
                }
                for vslot in self.in_edge_slots.get(child).into_iter().flatten() {
                    let cell = &mut state[vslot.layer as usize - 1][vslot.machine as usize]
                        [vslot.view as usize];
                    if cell.in_input.is_some() {
                        continue;
                    }
                    if vslot.machine as usize != src {
                        let w = 2 + input.words();
                        sends[src] += w;
                        recvs[vslot.machine as usize] += w;
                    }
                    cell.in_input = Some(input.clone());
                }
            }
        }
        ctx.charge_rounds(1);
        ctx.record_comm(&sends, &recvs, "plan-inputs");
    }

    /// One bottom-up step over the plan: materialize the layer's views from the
    /// skeletons and filled slots, summarize them (concurrently across machines when
    /// parallel execution is enabled), and forward each summary to its member slot —
    /// one round whose volume is exactly the moved summary records.
    #[allow(clippy::too_many_arguments)]
    fn summarize_plan_layer<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        layer: u32,
        problem: &P,
        state: &mut [Vec<Vec<ViewState<P>>>],
        resident: &mut [usize],
        root_summary: &mut Option<P::Summary>,
        store: Option<&mut SolverStore<P>>,
        parallel: bool,
    ) -> Vec<Vec<ClusterView<P>>> {
        let li = (layer - 1) as usize;
        let machines = self.num_machines;
        // Materialize every view of the layer (payload/input slots are consumed).
        let plan_layer = &self.layers[li];
        let layer_state = &mut state[li];
        let total_views: usize = plan_layer.iter().map(Vec::len).sum();
        let chunks: Vec<Vec<ClusterView<P>>> = {
            let mut work: Vec<(&Vec<PlanView>, &mut Vec<ViewState<P>>)> =
                plan_layer.iter().zip(layer_state.iter_mut()).collect();
            mpc_engine::par::par_map_mut(
                worth_parallelizing(parallel, total_views),
                &mut work,
                |_, (skeletons, states)| {
                    skeletons
                        .iter()
                        .zip(states.iter_mut())
                        .map(|(pv, st)| st.materialize(pv))
                        .collect::<Vec<_>>()
                },
            )
        };
        // mpc-lint: allow(metered-exchange) — chunk i was materialized on machine i; reassembly is machine-local
        let views = DistVec::from_chunks(chunks);
        // This layer's views join the resident set (released only after top-down).
        for (machine, chunk) in views.chunks().iter().enumerate() {
            resident[machine] += mpc_engine::words::slice_words(chunk);
        }
        ctx.check_memory_words(resident, "plan/views");
        if let Some(store) = store {
            store.record_views(layer, &views);
            // Record only *summary* payloads from the members: input payloads were
            // already stored by the scatter with the fresh path's last-record-wins
            // duplicate semantics, which the first-record-wins slot values here
            // would otherwise clobber. A cluster's summary is produced exactly once,
            // so its member slot value is its final store payload.
            for view in views.iter() {
                for member in &view.members {
                    if matches!(member.payload, Payload::Summary(_)) {
                        store.set_payload(member.element.id, member.payload.clone());
                    }
                }
            }
        }
        // Summarize per machine, concurrently; apply deliveries sequentially in
        // machine order so the accounting is deterministic.
        let summaries: Vec<Vec<(ElementId, P::Summary)>> = par_map(
            worth_parallelizing(parallel, total_views),
            views.chunks(),
            |_, chunk| {
                chunk
                    .iter()
                    .map(|view| (view.cluster, problem.summarize(view)))
                    .collect()
            },
        );
        let mut sends = vec![0usize; machines];
        let mut recvs = vec![0usize; machines];
        let mut any_forwarded = false;
        for (src, machine_summaries) in summaries.into_iter().enumerate() {
            for (cluster, summary) in machine_summaries {
                if cluster == self.top_cluster {
                    *root_summary = Some(summary);
                    continue;
                }
                any_forwarded = true;
                let slot = self
                    .payload_slot
                    .get(&cluster)
                    .expect("every non-top cluster is absorbed somewhere");
                if slot.machine as usize != src {
                    // The summary record `(cluster, Payload::Summary)` moves.
                    let w = 2 + summary.words();
                    sends[src] += w;
                    recvs[slot.machine as usize] += w;
                }
                state[slot.layer as usize - 1][slot.machine as usize][slot.view as usize]
                    .payloads[slot.member as usize] = Some(Payload::Summary(summary));
            }
        }
        if any_forwarded {
            ctx.charge_rounds(1);
            ctx.record_comm(&sends, &recvs, "plan-up");
        }
        // mpc-lint: allow(metered-exchange) — hands each chunk back to the machine that owns it
        views.into_chunks()
    }

    /// One top-down step over the plan: label the layer's views from their delivered
    /// boundary labels (concurrently across machines), then forward each produced
    /// label to its lower-layer readers — one round of exactly the moved label words.
    #[allow(clippy::too_many_arguments)]
    fn label_plan_layer<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        layer: u32,
        problem: &P,
        views: &[Vec<ClusterView<P>>],
        state: &mut [Vec<Vec<ViewState<P>>>],
        label_chunks: &mut [Vec<(NodeId, P::Label)>],
        parallel: bool,
    ) {
        let li = (layer - 1) as usize;
        let machines = self.num_machines;
        let total_views: usize = views.iter().map(Vec::len).sum();
        let layer_state = &state[li];
        let produced: Vec<Vec<(NodeId, P::Label)>> = {
            let work: Vec<_> = views.iter().zip(layer_state.iter()).collect();
            par_map(
                worth_parallelizing(parallel, total_views),
                &work,
                |_, (machine_views, machine_states)| {
                    machine_views
                        .iter()
                        .zip(machine_states.iter())
                        .flat_map(|(view, st)| {
                            let out_label =
                                st.out_label.as_ref().expect("boundary out-label present");
                            let member_labels =
                                problem.label_members(view, out_label, st.in_label.as_ref());
                            view.members
                                .iter()
                                .enumerate()
                                .filter(|(i, _)| *i != view.top)
                                .map(|(i, m)| (m.element.out_edge.child, member_labels[i].clone()))
                                .collect::<Vec<_>>()
                        })
                        .collect::<Vec<_>>()
                },
            )
        };
        let mut sends = vec![0usize; machines];
        let mut recvs = vec![0usize; machines];
        let mut any_delivered = false;
        for (src, machine_labels) in produced.into_iter().enumerate() {
            for (key, label) in machine_labels {
                any_delivered |=
                    self.place_label(key, &label, src, layer, state, &mut sends, &mut recvs);
                label_chunks[src].push((key, label));
            }
        }
        if any_delivered {
            ctx.charge_rounds(1);
            ctx.record_comm(&sends, &recvs, "plan-down");
        }
    }

    /// Deliver one produced label to every reader strictly below `producer_layer`,
    /// charging one round if anything is (or could be) forwarded.
    fn deliver_label<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        key: NodeId,
        label: &P::Label,
        src: usize,
        producer_layer: u32,
        state: &mut [Vec<Vec<ViewState<P>>>],
    ) {
        let machines = self.num_machines;
        let mut sends = vec![0usize; machines];
        let mut recvs = vec![0usize; machines];
        let delivered = self.place_label(
            key,
            label,
            src,
            producer_layer,
            state,
            &mut sends,
            &mut recvs,
        );
        if delivered {
            ctx.charge_rounds(1);
            ctx.record_comm(&sends, &recvs, "plan-down");
        }
    }

    /// Write `label` into every reader slot below `producer_layer`, accumulating the
    /// moved words. Returns `true` when at least one reader received it (whether or
    /// not any words crossed machines — the forwarding round still happens).
    #[allow(clippy::too_many_arguments)]
    fn place_label<P: ClusterDp>(
        &self,
        key: NodeId,
        label: &P::Label,
        src: usize,
        producer_layer: u32,
        state: &mut [Vec<Vec<ViewState<P>>>],
        sends: &mut [usize],
        recvs: &mut [usize],
    ) -> bool {
        let mut delivered = false;
        let mut place = |vslot: &ViewSlot, as_out: bool| {
            if vslot.layer >= producer_layer {
                // The fresh solver's label table does not contain this key yet when
                // that view is processed; it reads `None` there, and so do we.
                return;
            }
            delivered = true;
            if vslot.machine as usize != src {
                let w = 1 + label.words();
                sends[src] += w;
                recvs[vslot.machine as usize] += w;
            }
            let cell =
                &mut state[vslot.layer as usize - 1][vslot.machine as usize][vslot.view as usize];
            if as_out {
                cell.out_label = Some(label.clone());
            } else {
                cell.in_label = Some(label.clone());
            }
        };
        for vslot in self.out_label_readers.get(&key).into_iter().flatten() {
            place(vslot, true);
        }
        for vslot in self.in_label_readers.get(&key).into_iter().flatten() {
            place(vslot, false);
        }
        delivered
    }
}

/// Drop a downward-closed set of members from a skeleton view, remapping the
/// parent/children/top/attach indexes onto the compacted member list. The removed set
/// is downward-closed in the member tree (a removed member's descendants are removed
/// too), so every survivor's parent survives and the top member always survives.
fn splice_member_removals(view: &mut PlanView, removed: &BTreeSet<ElementId>) {
    let mut remap: Vec<Option<usize>> = Vec::with_capacity(view.members.len());
    let mut kept = 0usize;
    for m in &view.members {
        if removed.contains(&m.element.id) {
            remap.push(None);
        } else {
            remap.push(Some(kept));
            kept += 1;
        }
    }
    let old = std::mem::take(&mut view.members);
    view.members = old
        .into_iter()
        .enumerate()
        .filter_map(|(i, mut m)| {
            remap[i]?;
            m.parent = m.parent.map(|p| {
                remap[p]
                    .expect("parent of a surviving member survives (removal is downward-closed)")
            });
            m.children = m.children.iter().filter_map(|&c| remap[c]).collect();
            Some(m)
        })
        .collect();
    view.top = remap[view.top].expect("the top member never lies in the removed span");
    view.attach = view.attach.and_then(|a| remap[a]);
}

/// The per-view working state of one evaluation pass: payload and edge-input slots to
/// fill before summarization, and the boundary labels delivered before labeling.
struct ViewState<P: ClusterDp> {
    payloads: Vec<Option<Payload<P::NodeInput, P::Summary>>>,
    out_inputs: Vec<Option<P::EdgeInput>>,
    /// `Some` only when the view's in-edge exists in the edge list (`has_in_data`);
    /// filled lazily at materialization, defaulting like the fresh edge join.
    in_input: Option<P::EdgeInput>,
    out_label: Option<P::Label>,
    in_label: Option<P::Label>,
}

impl<P: ClusterDp> ViewState<P> {
    fn for_view(pv: &PlanView) -> Self {
        Self {
            payloads: (0..pv.members.len()).map(|_| None).collect(),
            out_inputs: (0..pv.members.len()).map(|_| None).collect(),
            in_input: None,
            out_label: None,
            in_label: None,
        }
    }

    /// Combine the skeleton with the filled slots into the exact [`ClusterView`] the
    /// fresh assembly would build (consumes the payload and edge-input slots).
    fn materialize(&mut self, pv: &PlanView) -> ClusterView<P> {
        let payloads = std::mem::take(&mut self.payloads);
        let out_inputs = std::mem::take(&mut self.out_inputs);
        let members: Vec<Member<P>> = pv
            .members
            .iter()
            .zip(payloads)
            .zip(out_inputs)
            .map(|((pm, payload), out_input)| Member {
                element: pm.element,
                payload: payload.expect("every member has a payload (input or summary)"),
                out_kind: pm.out_kind,
                out_input: out_input.unwrap_or_default(),
                parent: pm.parent,
                children: pm.children.clone(),
            })
            .collect();
        let in_input = if pv.has_in_data {
            Some(self.in_input.take().unwrap_or_default())
        } else {
            None
        };
        ClusterView {
            cluster: pv.cluster,
            kind: pv.kind,
            members,
            top: pv.top,
            out_edge: pv.out_edge,
            in_edge: pv.in_edge,
            attach: pv.attach,
            in_kind: pv.in_kind,
            in_input,
        }
    }
}
