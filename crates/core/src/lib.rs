//! # `tree-dp-core` — dynamic programming on trees in the MPC model
//!
//! This crate is the paper's primary contribution: a framework that solves any *dynamic
//! programming problem* (Definition 1) on a tree in `O(log D)` deterministic MPC rounds,
//! by (1) normalizing the input, (2) building a hierarchical clustering once, and
//! (3) running a bottom-up / top-down pass over the `O(1)` layers of that clustering in
//! `O(1)` rounds per problem.
//!
//! * [`ClusterDp`] — the problem abstraction of Definition 1.
//! * [`StateDp`] / [`StateEngine`] — a generic finite-state optimization engine that
//!   realizes Definition 1 for most of Table 1 (independent set, matching, dominating
//!   set, vertex cover, colorings, max-SAT, ...), including the auxiliary-edge rules
//!   for high-degree inputs (Section 5.3).
//! * [`solve_dp`] — the MPC solver (Sections 5.1–5.2).
//! * [`solve_sequential`] — the sequential oracle used for differential testing.
//! * [`prepare`] / [`PreparedTree`] — the end-to-end three-step pipeline (Section 1.4),
//!   with clustering reuse across problems.
//! * [`SolvePlan`] — the shared solve-plan engine: the problem-independent view
//!   assembly is built once per prepared tree ([`PreparedTree::plan`]) and any number
//!   of DP problems are then evaluated over the cached skeletons, each charging only
//!   its problem-dependent payload/summary/label exchanges.
//!
//! ## Example
//!
//! Solve unweighted maximum independent set on a 32-node path — prepare the
//! clustering once, then run the finite-state engine over it:
//!
//! ```
//! use mpc_engine::{MpcConfig, MpcContext};
//! use tree_dp_core::{prepare, StateEngine};
//! use tree_dp_problems::MaxWeightIndependentSet;
//! use tree_gen::shapes;
//! use tree_repr::{ListOfEdges, TreeInput};
//!
//! let tree = shapes::path(32);
//! let cfg = MpcConfig::new(2 * tree.len(), 0.5)
//!     .with_memory_slack(512.0)
//!     .with_bandwidth_slack(512.0);
//! let mut ctx = MpcContext::new(cfg);
//! let prepared = prepare(
//!     &mut ctx,
//!     TreeInput::ListOfEdges(ListOfEdges::from_tree(&tree)),
//!     None,
//! )
//! .unwrap();
//!
//! let engine = StateEngine::new(MaxWeightIndependentSet);
//! let weights = ctx.from_vec((0..tree.len()).map(|v| (v as u64, 1i64)).collect::<Vec<_>>());
//! let no_edge_inputs = ctx.from_vec(Vec::<(u64, ())>::new());
//! let sol = prepared.solve(&mut ctx, &engine, &weights, 0, &no_edge_inputs);
//!
//! // A path on 32 nodes has a maximum independent set of 16 nodes.
//! assert_eq!(sol.root_summary.best(engine.problem()), Some(16));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pipeline;
pub mod plan;
pub mod problem;
mod sequential;
pub mod snapshot;
pub mod solver;
mod state_dp;
pub mod store;

pub use pipeline::{prepare, prepare_and_solve, PipelineError, PreparedTree};
pub use plan::{PlanMember, PlanView, SolvePlan};
pub use problem::{ClusterDp, ClusterView, Member, Payload};
pub use sequential::{solve_sequential, SequentialSolution};
pub use snapshot::{
    open, seal, snapshot_from_bytes, snapshot_to_bytes, Snapshot, SnapshotError, SnapshotReader,
    SnapshotWriter, KIND_PLAN, KIND_PREPARED_TREE, KIND_STORE, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use solver::{label_layer, solve_dp, solve_dp_with_store, sort_solve_tables, summarize_layer};
pub use solver::{DpSolution, EdgeData, PayloadTable, SolveTables};
pub use state_dp::{Score, StateDp, StateEngine, StateSummary};
pub use store::SolverStore;
