//! The MPC solver: bottom-up summarization (Section 5.1) and top-down labeling
//! (Section 5.2) over a pre-computed hierarchical clustering.
//!
//! Both phases process the `O(1)` layers of the clustering one by one; within a layer,
//! the members of every cluster are brought onto one machine with a constant number of
//! sort/join rounds, the cluster is processed locally by the problem's sequential code,
//! and the results (summaries going up, labels going down) are written back. Hence the
//! whole phase costs `O(1)` rounds per layer and `O(1)` rounds in total — this is the
//! "solve the problem of interest in O(1) rounds" step of the paper's three-step
//! approach, and it can be repeated for any number of problems on the same clustering.

use crate::problem::{ClusterDp, ClusterView, Member, Payload};
use crate::store::SolverStore;
use mpc_engine::par::{par_map, worth_parallelizing};
use mpc_engine::{DistVec, MpcContext, SortedTable, Words};
use tree_clustering::{Clustering, EdgeKind, Element, ElementId, ElementKind};
use tree_repr::NodeId;

/// The distributed payload table of a solve: one record per element — `Input` for
/// original nodes, `Summary` for contracted clusters.
pub type PayloadTable<P> = DistVec<(
    ElementId,
    Payload<<P as ClusterDp>::NodeInput, <P as ClusterDp>::Summary>,
)>;

/// Problem-specific data attached to an original edge, keyed by the edge's child
/// endpoint: its kind (original vs. auxiliary) and the problem's edge input.
#[derive(Debug, Clone)]
pub struct EdgeData<E> {
    /// The edge's child endpoint (the key).
    pub child: NodeId,
    /// Original or auxiliary (Sections 4.4 / 5.3).
    pub kind: EdgeKind,
    /// Problem-specific edge input (e.g. a weight).
    pub input: E,
}

impl<E: Words> Words for EdgeData<E> {
    fn words(&self) -> usize {
        2 + self.input.words()
    }
}

/// The solution of a DP problem.
#[derive(Debug, Clone)]
pub struct DpSolution<P: ClusterDp> {
    /// One label per edge, keyed by the edge's child endpoint. The virtual root edge is
    /// included under the root's node id (it carries the root's own state).
    pub labels: DistVec<(NodeId, P::Label)>,
    /// The label of the virtual root edge.
    pub root_label: P::Label,
    /// The summary of the top cluster (e.g. the optimum value / total count).
    pub root_summary: P::Summary,
}

struct MemberRec<P: ClusterDp> {
    element: Element,
    payload: Payload<P::NodeInput, P::Summary>,
    out_kind: EdgeKind,
    out_input: P::EdgeInput,
}

impl<P: ClusterDp> Clone for MemberRec<P> {
    fn clone(&self) -> Self {
        Self {
            element: self.element,
            payload: self.payload.clone(),
            out_kind: self.out_kind,
            out_input: self.out_input.clone(),
        }
    }
}

impl<P: ClusterDp> Words for MemberRec<P> {
    fn words(&self) -> usize {
        self.element.words() + self.payload.words() + 1 + self.out_input.words()
    }
}

/// Solve a DP problem on a hierarchical clustering.
///
/// * `inputs` — one record per original node of the (degree-reduced) tree.
/// * `edge_data` — optional per-edge kind / input records, keyed by the edge's child
///   endpoint; edges without a record default to `(Original, E::default())`.
///
/// Costs `O(1)` rounds per layer, i.e. `O(1)` rounds in total for the `O(1)`-layer
/// clustering of Section 4.
pub fn solve_dp<P: ClusterDp>(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    problem: &P,
    inputs: &DistVec<(NodeId, P::NodeInput)>,
    edge_data: &DistVec<EdgeData<P::EdgeInput>>,
) -> DpSolution<P> {
    solve_dp_impl(ctx, clustering, problem, inputs, edge_data, None)
}

/// Like [`solve_dp`], but additionally retains the per-cluster views, payloads, and
/// labels in a [`SolverStore`] so that later batched-input updates can be re-solved
/// incrementally (see the `tree-dp-incremental` crate).
pub fn solve_dp_with_store<P: ClusterDp>(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    problem: &P,
    inputs: &DistVec<(NodeId, P::NodeInput)>,
    edge_data: &DistVec<EdgeData<P::EdgeInput>>,
) -> (DpSolution<P>, SolverStore<P>) {
    let mut store = SolverStore::new(clustering.num_layers);
    let solution = solve_dp_impl(
        ctx,
        clustering,
        problem,
        inputs,
        edge_data,
        Some(&mut store),
    );
    (solution, store)
}

fn solve_dp_impl<P: ClusterDp>(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    problem: &P,
    inputs: &DistVec<(NodeId, P::NodeInput)>,
    edge_data: &DistVec<EdgeData<P::EdgeInput>>,
    mut store: Option<&mut SolverStore<P>>,
) -> DpSolution<P> {
    // ---- bottom-up phase (Section 5.1) --------------------------------------------
    let parallel = ctx.config().parallel;
    // The edge-data and element tables never change during a solve: sort them once
    // and probe them in every layer's view assembly.
    let tables = sort_solve_tables(ctx, clustering, edge_data);
    let mut payloads: PayloadTable<P> = inputs
        .clone()
        .map_local_par(parallel, |(id, input)| (*id, Payload::Input(input.clone())));
    let mut top_summary: Option<P::Summary> = None;

    let views_per_layer: Vec<u32> = (1..=clustering.num_layers).collect();
    for &layer in &views_per_layer {
        let (views, summaries) = ctx.phase("dp-bottom-up", |ctx| {
            summarize_layer(
                ctx, clustering, layer, problem, &payloads, edge_data, &tables,
            )
        });
        if views.is_empty() {
            continue;
        }
        for (cid, payload) in summaries.iter() {
            if *cid == clustering.top_cluster {
                if let Payload::Summary(s) = payload {
                    top_summary = Some(s.clone());
                }
            }
        }
        if let Some(store) = store.as_deref_mut() {
            store.record_views(layer, &views);
        }
        payloads = payloads.concat_local(summaries);
        ctx.check_memory(&payloads, "dp/payloads");
    }
    let root_summary = top_summary.expect("top cluster summarized");

    // ---- top-down phase (Section 5.2) ----------------------------------------------
    let root_label = problem.label_root(&root_summary);
    let mut labels: DistVec<(NodeId, P::Label)> =
        ctx.from_vec(vec![(clustering.root, root_label.clone())]);

    // The payload table is final after the bottom-up pass: sort it once for the
    // whole top-down sweep instead of re-sorting it in every layer's join.
    let payloads_sorted = ctx.sort_table(&payloads, |p| p.0);
    for &layer in views_per_layer.iter().rev() {
        let views = ctx.phase("dp-top-down", |ctx| {
            build_views::<P>(
                ctx,
                clustering,
                layer,
                &payloads,
                Some(&payloads_sorted),
                edge_data,
                &tables,
            )
        });
        if views.is_empty() {
            continue;
        }
        let new_labels = label_layer(ctx, problem, views, &labels);
        labels = labels.concat_local(new_labels);
        ctx.check_memory(&labels, "dp/labels");
    }

    if let Some(store) = store {
        store.record_payloads(&payloads);
        store.record_labels(&labels);
        store.set_root(root_label.clone(), root_summary.clone());
    }
    DpSolution {
        labels,
        root_label,
        root_summary,
    }
}

/// The per-solve sorted lookup tables: the edge-data table and the clustering's
/// element table are immutable during a solve, so they are sorted once by
/// [`sort_solve_tables`] and probed (2 rounds each) in every layer's view assembly
/// instead of being re-sorted per join.
pub struct SolveTables {
    /// Edge-data records sorted by the edge's child endpoint.
    pub edges: SortedTable<NodeId>,
    /// Clustering elements sorted by element id.
    pub elements: SortedTable<ElementId>,
}

/// Sort the solve-invariant lookup tables once (two `sort_table` charges).
pub fn sort_solve_tables<E: Clone + Default + Words + Send + Sync>(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    edge_data: &DistVec<EdgeData<E>>,
) -> SolveTables {
    SolveTables {
        edges: ctx.sort_table(edge_data, |d| d.child),
        elements: ctx.sort_table(&clustering.elements, |e| e.id),
    }
}

/// One bottom-up step (Section 5.1): assemble the views of the clusters formed at
/// `layer` and summarize each of them locally. Returns the views together with the new
/// `(cluster, summary)` payload records; both are empty when no cluster forms at
/// `layer`.
pub fn summarize_layer<P: ClusterDp>(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    layer: u32,
    problem: &P,
    payloads: &PayloadTable<P>,
    edge_data: &DistVec<EdgeData<P::EdgeInput>>,
    tables: &SolveTables,
) -> (DistVec<ClusterView<P>>, PayloadTable<P>) {
    let views = build_views::<P>(ctx, clustering, layer, payloads, None, edge_data, tables);
    if views.is_empty() {
        return (views, ctx.empty());
    }
    // Summarize machine-locally without consuming the views. A view assembled here is
    // already final: every member of a layer-`layer` cluster was formed at a strictly
    // lower layer, so its payload (input or summary) can no longer change — which is
    // why retained views can be reused by the top-down pass and by incremental
    // re-solves. Clusters of one layer are independent, so the per-machine summarize
    // calls fan out over threads when parallel execution is enabled.
    // mpc-lint: allow(metered-exchange) — par_map produces chunk i from chunk i; summarize is machine-local
    let summaries = DistVec::from_chunks(par_map(
        worth_parallelizing(ctx.config().parallel, views.len()),
        views.chunks(),
        |_, chunk| {
            chunk
                .iter()
                .map(|view| (view.cluster, Payload::Summary(problem.summarize(view))))
                .collect()
        },
    ));
    (views, summaries)
}

/// One top-down step (Section 5.2): fetch the labels of every cluster's boundary
/// edges (they were produced at higher layers, by the top-down invariant of
/// Definition 9) and label all internal member edges locally. Returns the new
/// `(edge child, label)` records.
pub fn label_layer<P: ClusterDp>(
    ctx: &mut MpcContext,
    problem: &P,
    views: DistVec<ClusterView<P>>,
    labels: &DistVec<(NodeId, P::Label)>,
) -> DistVec<(NodeId, P::Label)> {
    let parallel = ctx.config().parallel;
    // The label table is probed twice per layer (outgoing and incoming boundary
    // edges): sort it once per layer.
    let labels_sorted = ctx.sort_table(labels, |l| l.0);
    let with_out = ctx.join_lookup_sorted(views, |v| v.out_edge.child, labels, &labels_sorted);
    let with_in = ctx.join_lookup_sorted(
        with_out,
        |(v, _)| v.in_edge.map(|e| e.child).unwrap_or(u64::MAX),
        labels,
        &labels_sorted,
    );
    // Per-cluster labeling is independent within a layer: fan it out over threads.
    with_in.flat_map_local_par(parallel, |((view, out), in_lab)| {
        let out_label = &out.as_ref().expect("boundary out-label present").1;
        let in_label = in_lab.as_ref().map(|l| &l.1);
        let member_labels = problem.label_members(view, out_label, in_label);
        view.members
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != view.top)
            .map(|(i, m)| (m.element.out_edge.child, member_labels[i].clone()))
            .collect::<Vec<_>>()
    })
}

/// Assemble the [`ClusterView`] of every cluster formed at `layer`, each fully contained
/// in one machine (a constant number of joins/probes and one group gathering). The
/// solve-invariant tables arrive pre-sorted in `tables`; `payloads_sorted` is given
/// during the top-down pass, when the payload table is final. Also the assembly engine
/// behind [`crate::plan::SolvePlan`], which runs it once with a zero-sized probe
/// problem and caches the resulting skeletons.
pub(crate) fn build_views<P: ClusterDp>(
    ctx: &mut MpcContext,
    clustering: &Clustering,
    layer: u32,
    payloads: &PayloadTable<P>,
    payloads_sorted: Option<&SortedTable<ElementId>>,
    edge_data: &DistVec<EdgeData<P::EdgeInput>>,
    tables: &SolveTables,
) -> DistVec<ClusterView<P>> {
    let members_at_layer = clustering
        .elements
        .clone()
        .filter_local(|e| e.absorbed_at == layer && e.kind != ElementKind::TopCluster);
    if members_at_layer.is_empty() {
        return ctx.empty();
    }
    let with_payload = match payloads_sorted {
        Some(sorted) => ctx.join_lookup_sorted(members_at_layer, |e| e.id, payloads, sorted),
        None => ctx.join_lookup(members_at_layer, |e| e.id, payloads, |p| p.0),
    };
    let with_edge = ctx.join_lookup_sorted(
        with_payload,
        |(e, _)| e.out_edge.child,
        edge_data,
        &tables.edges,
    );
    let parallel = ctx.config().parallel;
    let member_recs: DistVec<MemberRec<P>> =
        with_edge.map_local_par(parallel, |((element, payload), edge)| {
            let payload = payload
                .as_ref()
                .map(|p| p.1.clone())
                .expect("every member has a payload (input or summary)");
            let (out_kind, out_input) = edge
                .as_ref()
                .map(|d| (d.kind, d.input.clone()))
                .unwrap_or((EdgeKind::Original, P::EdgeInput::default()));
            MemberRec {
                element: *element,
                payload,
                out_kind,
                out_input,
            }
        });
    let grouped = ctx.gather_groups(member_recs, |m| m.element.absorbed_into);
    // Attach the cluster's own element record and the data of its incoming edge.
    let with_cluster = ctx.join_lookup_sorted(
        grouped,
        |(cid, _)| *cid,
        &clustering.elements,
        &tables.elements,
    );
    let with_in_edge = ctx.join_lookup_sorted(
        with_cluster,
        |((_, _), cluster)| {
            cluster
                .as_ref()
                .and_then(|c| c.in_edge)
                .map(|e| e.child)
                .unwrap_or(u64::MAX)
        },
        edge_data,
        &tables.edges,
    );
    // Assembling a member tree is quadratic in the cluster size — the heaviest
    // machine-local step of a solve, and every cluster is independent.
    let views =
        with_in_edge.map_local_par(parallel, |(((cid, members), cluster), in_edge_data)| {
            let cluster = cluster.as_ref().expect("cluster element exists");
            assemble_view::<P>(*cid, cluster, members.clone(), in_edge_data.clone())
        });
    ctx.check_memory(&views, "dp/views");
    views
}

/// Link the members of one cluster into the small member tree (machine-local).
fn assemble_view<P: ClusterDp>(
    cid: ElementId,
    cluster: &Element,
    members: Vec<MemberRec<P>>,
    in_edge_data: Option<EdgeData<P::EdgeInput>>,
) -> ClusterView<P> {
    // Member `b` hangs below member `a` when `a` accepts `b`'s outgoing edge: original
    // nodes accept every edge pointing at them, contracted clusters accept exactly
    // their recorded incoming edge.
    let accepts = |a: &MemberRec<P>, edge: &tree_repr::DirectedEdge| -> bool {
        if a.element.kind == ElementKind::Node {
            a.element.id == edge.parent
        } else {
            a.element.in_edge == Some(*edge)
        }
    };
    let n = members.len();
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
    for b in 0..n {
        let edge = members[b].element.out_edge;
        if edge == cluster.out_edge {
            continue;
        }
        for a in 0..n {
            if a != b && accepts(&members[a], &edge) {
                parent[b] = Some(a);
                children[a].push(b);
                break;
            }
        }
    }
    let top = members
        .iter()
        .position(|m| m.element.out_edge == cluster.out_edge)
        .expect("the top member carries the cluster's outgoing edge");
    let attach = cluster
        .in_edge
        .and_then(|e| members.iter().position(|m| accepts(m, &e)));
    let (in_kind, in_input) = match in_edge_data {
        Some(d) => (d.kind, Some(d.input)),
        None => (EdgeKind::Original, None),
    };
    let members: Vec<Member<P>> = members
        .into_iter()
        .enumerate()
        .map(|(i, m)| Member {
            element: m.element,
            payload: m.payload,
            out_kind: m.out_kind,
            out_input: m.out_input,
            parent: parent[i],
            children: std::mem::take(&mut children[i]),
        })
        .collect();
    ClusterView {
        cluster: cid,
        kind: cluster.kind,
        members,
        top,
        out_edge: cluster.out_edge,
        in_edge: cluster.in_edge,
        attach,
        in_kind,
        in_input,
    }
}

impl<P: ClusterDp> Words for ClusterView<P> {
    fn words(&self) -> usize {
        4 + self
            .members
            .iter()
            .map(|m| {
                m.element.words() + m.payload.words() + 2 + m.out_input.words() + m.children.len()
            })
            .sum::<usize>()
    }
}

/// Build an edge-data table where every edge is original and carries the problem's
/// default edge input (convenience for problems without edge inputs).
pub fn default_edge_data<E: Clone + Default + Words + Send>(
    ctx: &MpcContext,
) -> DistVec<EdgeData<E>> {
    ctx.empty()
}
