//! Sequential reference solver.
//!
//! Definition 1 already contains a complete sequential algorithm: treat the entire tree
//! as a single indegree-0 cluster, summarize it, label the virtual root edge, and then
//! label every internal edge. Running the *same* problem implementation through this
//! path and through the MPC solver gives a differential-testing oracle — any divergence
//! is a bug in the distributed machinery (or a genuine tie broken differently, which is
//! why tests compare solution *values*, not raw label vectors, for optimization
//! problems).

use crate::problem::{ClusterDp, ClusterView, Member, Payload};
use std::collections::BTreeMap;
use tree_clustering::{EdgeKind, Element, ElementKind, VIRTUAL_NODE};
use tree_repr::{DirectedEdge, NodeId};

/// Solution produced by [`solve_sequential`].
#[derive(Debug, Clone)]
pub struct SequentialSolution<P: ClusterDp> {
    /// One label per edge, keyed by the edge's child endpoint (the root's entry is the
    /// virtual edge's label).
    pub labels: BTreeMap<NodeId, P::Label>,
    /// Label of the virtual root edge.
    pub root_label: P::Label,
    /// Summary of the whole tree (e.g. the optimum value).
    pub root_summary: P::Summary,
}

/// Solve a DP problem sequentially on a host-side edge list.
///
/// `node_input(v)` supplies the input of node `v`; `edge_info(c)` supplies the kind and
/// edge input of the edge whose child endpoint is `c`.
pub fn solve_sequential<P: ClusterDp>(
    problem: &P,
    edges: &[DirectedEdge],
    root: NodeId,
    node_input: impl Fn(NodeId) -> P::NodeInput,
    edge_info: impl Fn(NodeId) -> (EdgeKind, P::EdgeInput),
) -> SequentialSolution<P> {
    // Build the whole tree as one top cluster whose members are all original nodes.
    let mut nodes: Vec<NodeId> = edges.iter().map(|e| e.child).collect();
    nodes.push(root);
    nodes.sort_unstable();
    nodes.dedup();
    let index_of: BTreeMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let parent_of: BTreeMap<NodeId, NodeId> = edges.iter().map(|e| (e.child, e.parent)).collect();

    let mut members: Vec<Member<P>> = nodes
        .iter()
        .map(|&v| {
            let parent = parent_of.get(&v).copied();
            let (kind, input) = edge_info(v);
            Member {
                element: Element {
                    id: v,
                    kind: ElementKind::Node,
                    formed_at: 0,
                    absorbed_into: VIRTUAL_NODE,
                    absorbed_at: 1,
                    out_edge: DirectedEdge::new(v, parent.unwrap_or(VIRTUAL_NODE)),
                    in_edge: None,
                },
                payload: Payload::Input(node_input(v)),
                out_kind: kind,
                out_input: input,
                parent: parent.map(|p| index_of[&p]),
                children: Vec::new(),
            }
        })
        .collect();
    for i in 0..members.len() {
        if let Some(p) = members[i].parent {
            members[p].children.push(i);
        }
    }
    let view = ClusterView {
        cluster: VIRTUAL_NODE,
        kind: ElementKind::TopCluster,
        members,
        top: index_of[&root],
        out_edge: DirectedEdge::new(root, VIRTUAL_NODE),
        in_edge: None,
        attach: None,
        in_kind: EdgeKind::Original,
        in_input: None,
    };

    let root_summary = problem.summarize(&view);
    let root_label = problem.label_root(&root_summary);
    let member_labels = problem.label_members(&view, &root_label, None);
    let mut labels: BTreeMap<NodeId, P::Label> = BTreeMap::new();
    for (i, m) in view.members.iter().enumerate() {
        if i == view.top {
            labels.insert(m.element.id, root_label.clone());
        } else {
            labels.insert(m.element.id, member_labels[i].clone());
        }
    }
    SequentialSolution {
        labels,
        root_label,
        root_summary,
    }
}
