//! Hand-rolled binary snapshot codec for the serving layer: persist a
//! [`PreparedTree`], its cached [`SolvePlan`], and a [`SolverStore`] to plain bytes
//! and restore them bit-identically — pure `std`, no external serialization crates
//! (the environment is offline).
//!
//! ## Format
//!
//! Every snapshot is a 32-byte header followed by the payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  b"TREEDPSS"
//! 8       4     version (little-endian u32, currently 1)
//! 12      4     kind    (what the payload encodes — tree / plan / store / ...)
//! 16      8     payload length in bytes
//! 24      8     FNV-1a-64 checksum of the payload
//! 32      -     payload
//! ```
//!
//! All integers are little-endian; `usize` travels as `u64`; `f64` travels as its IEEE
//! bit pattern. Collections encode a `u64` length followed by their elements; maps
//! encode their entries in key order ([`std::collections::BTreeMap`] iteration order),
//! so encoding is deterministic: equal values produce equal bytes.
//!
//! Decoding is total: corrupted headers, truncated payloads, unknown versions, wrong
//! kinds, and checksum mismatches all surface as [`SnapshotError`] values — never
//! panics (the repo's panic-policy lint applies to this module like any other).
//!
//! The codec is versioned through [`SNAPSHOT_VERSION`]: a reader refuses payloads
//! written by a future version instead of misinterpreting them. Downstream users (the
//! `tree-dp-server` crate's tenant snapshots) layer their own kinds on top via
//! [`seal`] / [`open`].

use crate::pipeline::PreparedTree;
use crate::plan::{MemberSlot, PlanMember, PlanView, SolvePlan, ViewSlot};
use crate::problem::{ClusterDp, ClusterView, Member, Payload};
use crate::state_dp::StateSummary;
use crate::store::SolverStore;
use mpc_engine::{DistVec, MpcConfig};
use std::cell::OnceCell;
use std::collections::BTreeMap;
use tree_clustering::{Clustering, EdgeKind, Element, ElementKind};
use tree_repr::DirectedEdge;

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TREEDPSS";

/// Current format version written by [`seal`] and accepted by [`open`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// Payload kind: a [`PreparedTree`] (with its cached plan, if built).
pub const KIND_PREPARED_TREE: u32 = 1;
/// Payload kind: a bare [`SolvePlan`].
pub const KIND_PLAN: u32 = 2;
/// Payload kind: a [`SolverStore`].
pub const KIND_STORE: u32 = 3;

/// Why a snapshot failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The magic bytes do not open the buffer — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// The version recorded in the header.
        found: u32,
    },
    /// The payload encodes a different kind than the caller asked for.
    WrongKind {
        /// The kind recorded in the header.
        found: u32,
        /// The kind the caller expected.
        expected: u32,
    },
    /// The buffer ends before the encoded data does.
    Truncated,
    /// The payload bytes do not hash to the recorded checksum.
    ChecksumMismatch,
    /// The payload is structurally invalid (bad enum tag, non-UTF-8 string,
    /// impossible length, trailing bytes, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot: bad magic bytes"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "snapshot: unsupported format version {found}")
            }
            SnapshotError::WrongKind { found, expected } => {
                write!(
                    f,
                    "snapshot: kind {found} where kind {expected} was expected"
                )
            }
            SnapshotError::Truncated => write!(f, "snapshot: truncated input"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot: payload checksum mismatch"),
            SnapshotError::Malformed(what) => write!(f, "snapshot: malformed payload ({what})"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a 64-bit hash of `bytes` — the payload checksum.
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only byte sink the encoders write into.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Consume the writer, returning the written bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a snapshot payload; every `take_*` fails with
/// [`SnapshotError::Truncated`] instead of reading past the end.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// A reader over `bytes` (a bare payload, without header — see [`open`]).
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    // mpc-lint: allow(dead-pub-api) — decoder-side length probe for out-of-crate Snapshot impls (the server's tenant codec); in-crate reads are same-file
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Take one byte.
    pub fn take_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Take a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take_bytes(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Take a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take_bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Take a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(self.take_u64()? as i64)
    }

    /// Take a `usize` (encoded as `u64`); fails on values the platform cannot hold.
    pub fn take_usize(&mut self) -> Result<usize, SnapshotError> {
        usize::try_from(self.take_u64()?).map_err(|_| SnapshotError::Malformed("usize overflow"))
    }

    /// Take a `bool`; any byte other than 0/1 is malformed.
    pub fn take_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool tag")),
        }
    }

    /// Take an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Take a collection length prefix, validating it against the remaining buffer
    /// BEFORE any allocation happens. Every element of a snapshotted collection
    /// occupies at least one byte (the zero-width `()` impl exists for trait
    /// completeness and never appears inside a snapshotted collection), so a recorded
    /// length exceeding the remaining byte count can never decode successfully — it is
    /// rejected up front as [`SnapshotError::Malformed`] instead of driving a giant
    /// `Vec::with_capacity` or an element-by-element walk to the end of the buffer.
    // mpc-lint: allow(dead-pub-api) — decode helper of the public SnapshotReader API; every in-tree collection impl lives in this file, but downstream Snapshot impls need the same pre-allocation length validation
    pub fn take_len(&mut self) -> Result<usize, SnapshotError> {
        let len = self.take_usize()?;
        if len > self.remaining() {
            return Err(SnapshotError::Malformed("length prefix exceeds buffer"));
        }
        Ok(len)
    }

    /// Assert the payload is fully consumed.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Malformed("trailing payload bytes"))
        }
    }
}

/// Frame `payload` with the versioned header (magic, [`SNAPSHOT_VERSION`], `kind`,
/// length, checksum). The inverse of [`open`].
pub fn seal(kind: u32, payload: SnapshotWriter) -> Vec<u8> {
    let payload = payload.into_bytes();
    let mut out = Vec::with_capacity(32 + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Validate the header of `bytes` (magic, version, kind, length, checksum) and return
/// a reader positioned at the start of the payload. The inverse of [`seal`].
pub fn open(bytes: &[u8], expected_kind: u32) -> Result<SnapshotReader<'_>, SnapshotError> {
    let mut header = SnapshotReader::new(bytes);
    let magic = header.take_bytes(8)?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = header.take_u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let kind = header.take_u32()?;
    if kind != expected_kind {
        return Err(SnapshotError::WrongKind {
            found: kind,
            expected: expected_kind,
        });
    }
    let len = header.take_usize()?;
    let checksum = header.take_u64()?;
    if header.remaining() < len {
        return Err(SnapshotError::Truncated);
    }
    if header.remaining() > len {
        return Err(SnapshotError::Malformed("trailing bytes after payload"));
    }
    let payload = header.take_bytes(len)?;
    if fnv1a_64(payload) != checksum {
        return Err(SnapshotError::ChecksumMismatch);
    }
    Ok(SnapshotReader::new(payload))
}

/// A value with a binary snapshot encoding. Implementations must round-trip exactly:
/// `decode(encode(v)) == v`, bit for bit, and `encode` must be deterministic (equal
/// values produce equal bytes — map contents encode in key order).
pub trait Snapshot: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut SnapshotWriter);
    /// Decode one value from `r`, consuming exactly the bytes `encode` wrote.
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError>;
}

/// Encode `value` as a complete snapshot (header + payload) of the given `kind`.
pub fn snapshot_to_bytes<T: Snapshot>(kind: u32, value: &T) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    value.encode(&mut w);
    seal(kind, w)
}

/// Decode a complete snapshot of the given `kind` back into a value.
pub fn snapshot_from_bytes<T: Snapshot>(kind: u32, bytes: &[u8]) -> Result<T, SnapshotError> {
    let mut r = open(bytes, kind)?;
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

// ----- primitive impls --------------------------------------------------------------

impl Snapshot for u8 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u8()
    }
}

impl Snapshot for u32 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u32()
    }
}

impl Snapshot for u64 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_u64()
    }
}

impl Snapshot for i64 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_i64(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_i64()
    }
}

impl Snapshot for usize {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_usize()
    }
}

impl Snapshot for bool {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_bool(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_bool()
    }
}

impl Snapshot for f64 {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        r.take_f64()
    }
}

impl Snapshot for () {
    fn encode(&self, _w: &mut SnapshotWriter) {}
    fn decode(_r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(())
    }
}

impl Snapshot for String {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_len()?;
        let bytes = r.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::Malformed("non-UTF-8 string"))
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<T: Snapshot> Snapshot for Option<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            _ => Err(SnapshotError::Malformed("Option tag")),
        }
    }
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        // `take_len` bounds the length by the remaining bytes, so this capacity is
        // already no larger than the buffer itself — a corrupt length surfaces as
        // `Malformed` before any allocation.
        let len = r.take_len()?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<K: Snapshot + Ord, V: Snapshot> Snapshot for BTreeMap<K, V> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.len());
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let len = r.take_len()?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for DistVec<T> {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.chunks().len());
        for chunk in self.chunks() {
            w.put_usize(chunk.len());
            for item in chunk {
                item.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let num_chunks = r.take_len()?;
        let mut chunks = Vec::with_capacity(num_chunks);
        for _ in 0..num_chunks {
            let len = r.take_len()?;
            let mut chunk = Vec::with_capacity(len);
            for _ in 0..len {
                chunk.push(T::decode(r)?);
            }
            chunks.push(chunk);
        }
        // mpc-lint: allow(metered-exchange) — restores the encode-time chunk placement; no data moves between machines
        Ok(DistVec::from_chunks(chunks))
    }
}

// ----- engine / clustering impls ----------------------------------------------------

impl Snapshot for MpcConfig {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.n);
        w.put_f64(self.delta);
        w.put_f64(self.memory_slack);
        w.put_f64(self.bandwidth_slack);
        w.put_bool(self.strict);
        w.put_bool(self.parallel);
        w.put_bool(self.radix);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MpcConfig {
            n: r.take_usize()?,
            delta: r.take_f64()?,
            memory_slack: r.take_f64()?,
            bandwidth_slack: r.take_f64()?,
            strict: r.take_bool()?,
            parallel: r.take_bool()?,
            radix: r.take_bool()?,
            // Not part of the wire format: convergence skipping changes only round
            // accounting, never outputs, so restored runs are equivalent under the
            // default and the snapshot ABI stays stable.
            convergence_skip: true,
        })
    }
}

impl Snapshot for DirectedEdge {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.child);
        w.put_u64(self.parent);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(DirectedEdge {
            child: r.take_u64()?,
            parent: r.take_u64()?,
        })
    }
}

impl Snapshot for EdgeKind {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            EdgeKind::Original => 0,
            EdgeKind::Auxiliary => 1,
        });
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(EdgeKind::Original),
            1 => Ok(EdgeKind::Auxiliary),
            _ => Err(SnapshotError::Malformed("EdgeKind tag")),
        }
    }
}

impl Snapshot for ElementKind {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            ElementKind::Node => 0,
            ElementKind::ClusterIndeg0 => 1,
            ElementKind::ClusterIndeg1 => 2,
            ElementKind::TopCluster => 3,
        });
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(ElementKind::Node),
            1 => Ok(ElementKind::ClusterIndeg0),
            2 => Ok(ElementKind::ClusterIndeg1),
            3 => Ok(ElementKind::TopCluster),
            _ => Err(SnapshotError::Malformed("ElementKind tag")),
        }
    }
}

impl Snapshot for Element {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.id);
        self.kind.encode(w);
        w.put_u32(self.formed_at);
        w.put_u64(self.absorbed_into);
        w.put_u32(self.absorbed_at);
        self.out_edge.encode(w);
        self.in_edge.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Element {
            id: r.take_u64()?,
            kind: ElementKind::decode(r)?,
            formed_at: r.take_u32()?,
            absorbed_into: r.take_u64()?,
            absorbed_at: r.take_u32()?,
            out_edge: DirectedEdge::decode(r)?,
            in_edge: Option::decode(r)?,
        })
    }
}

impl Snapshot for Clustering {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.num_nodes);
        w.put_u64(self.root);
        w.put_u32(self.num_layers);
        w.put_usize(self.threshold);
        self.elements.encode(w);
        w.put_u64(self.top_cluster);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Clustering {
            num_nodes: r.take_usize()?,
            root: r.take_u64()?,
            num_layers: r.take_u32()?,
            threshold: r.take_usize()?,
            elements: DistVec::decode(r)?,
            top_cluster: r.take_u64()?,
        })
    }
}

// ----- plan impls -------------------------------------------------------------------

impl Snapshot for PlanMember {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.element.encode(w);
        self.out_kind.encode(w);
        self.parent.encode(w);
        self.children.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PlanMember {
            element: Element::decode(r)?,
            out_kind: EdgeKind::decode(r)?,
            parent: Option::decode(r)?,
            children: Vec::decode(r)?,
        })
    }
}

impl Snapshot for PlanView {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cluster);
        self.kind.encode(w);
        self.members.encode(w);
        w.put_usize(self.top);
        self.out_edge.encode(w);
        self.in_edge.encode(w);
        self.attach.encode(w);
        self.in_kind.encode(w);
        w.put_bool(self.has_in_data);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(PlanView {
            cluster: r.take_u64()?,
            kind: ElementKind::decode(r)?,
            members: Vec::decode(r)?,
            top: r.take_usize()?,
            out_edge: DirectedEdge::decode(r)?,
            in_edge: Option::decode(r)?,
            attach: Option::decode(r)?,
            in_kind: EdgeKind::decode(r)?,
            has_in_data: r.take_bool()?,
        })
    }
}

impl Snapshot for MemberSlot {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.layer);
        w.put_u32(self.machine);
        w.put_u32(self.view);
        w.put_u32(self.member);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(MemberSlot {
            layer: r.take_u32()?,
            machine: r.take_u32()?,
            view: r.take_u32()?,
            member: r.take_u32()?,
        })
    }
}

impl Snapshot for ViewSlot {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.layer);
        w.put_u32(self.machine);
        w.put_u32(self.view);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ViewSlot {
            layer: r.take_u32()?,
            machine: r.take_u32()?,
            view: r.take_u32()?,
        })
    }
}

impl Snapshot for SolvePlan {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.num_layers);
        w.put_usize(self.num_machines);
        w.put_u64(self.root);
        w.put_u64(self.top_cluster);
        w.put_usize(self.top_machine);
        self.aux_nodes.encode(w);
        self.layers.encode(w);
        self.payload_slot.encode(w);
        self.out_edge_slots.encode(w);
        self.in_edge_slots.encode(w);
        self.out_label_readers.encode(w);
        self.in_label_readers.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(SolvePlan {
            num_layers: r.take_u32()?,
            num_machines: r.take_usize()?,
            root: r.take_u64()?,
            top_cluster: r.take_u64()?,
            top_machine: r.take_usize()?,
            aux_nodes: Vec::decode(r)?,
            layers: Vec::decode(r)?,
            payload_slot: BTreeMap::decode(r)?,
            out_edge_slots: BTreeMap::decode(r)?,
            in_edge_slots: BTreeMap::decode(r)?,
            out_label_readers: BTreeMap::decode(r)?,
            in_label_readers: BTreeMap::decode(r)?,
        })
    }
}

impl Snapshot for PreparedTree {
    fn encode(&self, w: &mut SnapshotWriter) {
        self.clustering.encode(w);
        self.edges.encode(w);
        w.put_u64(self.root);
        w.put_usize(self.num_nodes);
        w.put_usize(self.original_nodes);
        self.aux_to_original.encode(w);
        // The cached plan travels with the tree when built; a tree snapshotted before
        // its first solve restores plan-less and rebuilds lazily (charged as usual).
        self.plan.get().cloned().encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let clustering = Clustering::decode(r)?;
        let edges = DistVec::decode(r)?;
        let root = r.take_u64()?;
        let num_nodes = r.take_usize()?;
        let original_nodes = r.take_usize()?;
        let aux_to_original = DistVec::decode(r)?;
        let plan_value: Option<SolvePlan> = Option::decode(r)?;
        let plan = OnceCell::new();
        if let Some(p) = plan_value {
            // A freshly created cell accepts exactly one value; ignore the Ok(()).
            let _ = plan.set(p);
        }
        Ok(PreparedTree {
            clustering,
            edges,
            root,
            num_nodes,
            original_nodes,
            aux_to_original,
            plan,
        })
    }
}

// ----- problem-state impls ----------------------------------------------------------

impl Snapshot for StateSummary {
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.states);
        w.put_bool(self.has_attach);
        self.values.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(StateSummary {
            states: r.take_usize()?,
            has_attach: r.take_bool()?,
            values: Vec::decode(r)?,
        })
    }
}

impl<I: Snapshot, S: Snapshot> Snapshot for Payload<I, S> {
    fn encode(&self, w: &mut SnapshotWriter) {
        match self {
            Payload::Input(i) => {
                w.put_u8(0);
                i.encode(w);
            }
            Payload::Summary(s) => {
                w.put_u8(1);
                s.encode(w);
            }
        }
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.take_u8()? {
            0 => Ok(Payload::Input(I::decode(r)?)),
            1 => Ok(Payload::Summary(S::decode(r)?)),
            _ => Err(SnapshotError::Malformed("Payload tag")),
        }
    }
}

impl<P: ClusterDp> Snapshot for Member<P>
where
    P::NodeInput: Snapshot,
    P::EdgeInput: Snapshot,
    P::Summary: Snapshot,
{
    fn encode(&self, w: &mut SnapshotWriter) {
        self.element.encode(w);
        self.payload.encode(w);
        self.out_kind.encode(w);
        self.out_input.encode(w);
        self.parent.encode(w);
        self.children.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Member {
            element: Element::decode(r)?,
            payload: Payload::decode(r)?,
            out_kind: EdgeKind::decode(r)?,
            out_input: P::EdgeInput::decode(r)?,
            parent: Option::decode(r)?,
            children: Vec::decode(r)?,
        })
    }
}

impl<P: ClusterDp> Snapshot for ClusterView<P>
where
    P::NodeInput: Snapshot,
    P::EdgeInput: Snapshot,
    P::Summary: Snapshot,
{
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.cluster);
        self.kind.encode(w);
        self.members.encode(w);
        w.put_usize(self.top);
        self.out_edge.encode(w);
        self.in_edge.encode(w);
        self.attach.encode(w);
        self.in_kind.encode(w);
        self.in_input.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ClusterView {
            cluster: r.take_u64()?,
            kind: ElementKind::decode(r)?,
            members: Vec::decode(r)?,
            top: r.take_usize()?,
            out_edge: DirectedEdge::decode(r)?,
            in_edge: Option::decode(r)?,
            attach: Option::decode(r)?,
            in_kind: EdgeKind::decode(r)?,
            in_input: Option::decode(r)?,
        })
    }
}

impl<P: ClusterDp> Snapshot for SolverStore<P>
where
    P::NodeInput: Snapshot,
    P::EdgeInput: Snapshot,
    P::Summary: Snapshot,
    P::Label: Snapshot,
{
    fn encode(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.num_layers);
        self.payloads.encode(w);
        self.views.encode(w);
        self.labels.encode(w);
        self.root_label.encode(w);
        self.root_summary.encode(w);
    }
    fn decode(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let num_layers = r.take_u32()?;
        let payloads = BTreeMap::decode(r)?;
        let views: Vec<BTreeMap<_, _>> = Vec::decode(r)?;
        if views.len() != num_layers as usize {
            return Err(SnapshotError::Malformed("view layer count"));
        }
        Ok(SolverStore {
            num_layers,
            payloads,
            views,
            labels: BTreeMap::decode(r)?,
            root_label: Option::decode(r)?,
            root_summary: Option::decode(r)?,
        })
    }
}

// ----- inherent convenience APIs ----------------------------------------------------

impl PreparedTree {
    /// Serialize this prepared tree (clustering, edges, aux map, and the cached plan
    /// when built) as a complete [`KIND_PREPARED_TREE`] snapshot.
    pub fn to_snapshot(&self) -> Vec<u8> {
        snapshot_to_bytes(KIND_PREPARED_TREE, self)
    }

    /// Restore a prepared tree from [`to_snapshot`](Self::to_snapshot) bytes.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot_from_bytes(KIND_PREPARED_TREE, bytes)
    }
}

impl SolvePlan {
    /// Serialize this plan as a complete [`KIND_PLAN`] snapshot.
    pub fn to_snapshot(&self) -> Vec<u8> {
        snapshot_to_bytes(KIND_PLAN, self)
    }

    /// Restore a plan from [`to_snapshot`](Self::to_snapshot) bytes.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot_from_bytes(KIND_PLAN, bytes)
    }
}

impl<P: ClusterDp> SolverStore<P>
where
    P::NodeInput: Snapshot,
    P::EdgeInput: Snapshot,
    P::Summary: Snapshot,
    P::Label: Snapshot,
{
    /// Serialize this store as a complete [`KIND_STORE`] snapshot.
    pub fn to_snapshot(&self) -> Vec<u8> {
        snapshot_to_bytes(KIND_STORE, self)
    }

    /// Restore a store from [`to_snapshot`](Self::to_snapshot) bytes.
    pub fn from_snapshot(bytes: &[u8]) -> Result<Self, SnapshotError> {
        snapshot_from_bytes(KIND_STORE, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = SnapshotWriter::new();
        42u8.encode(&mut w);
        7u32.encode(&mut w);
        u64::MAX.encode(&mut w);
        (-5i64).encode(&mut w);
        123usize.encode(&mut w);
        true.encode(&mut w);
        1.5f64.encode(&mut w);
        "héllo".to_string().encode(&mut w);
        Some(9u64).encode(&mut w);
        Option::<u64>::None.encode(&mut w);
        vec![1u64, 2, 3].encode(&mut w);
        let map: BTreeMap<u64, bool> = [(1, true), (2, false)].into_iter().collect();
        map.encode(&mut w);

        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 42);
        assert_eq!(u32::decode(&mut r).unwrap(), 7);
        assert_eq!(u64::decode(&mut r).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut r).unwrap(), -5);
        assert_eq!(usize::decode(&mut r).unwrap(), 123);
        assert!(bool::decode(&mut r).unwrap());
        assert_eq!(f64::decode(&mut r).unwrap(), 1.5);
        assert_eq!(String::decode(&mut r).unwrap(), "héllo");
        assert_eq!(Option::<u64>::decode(&mut r).unwrap(), Some(9));
        assert_eq!(Option::<u64>::decode(&mut r).unwrap(), None);
        assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), vec![1, 2, 3]);
        assert_eq!(BTreeMap::<u64, bool>::decode(&mut r).unwrap(), map);
        r.finish().unwrap();
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let mut w = SnapshotWriter::new();
        vec![1u64, 2, 3].encode(&mut w);
        let sealed = seal(KIND_PLAN, w);

        // Good path.
        let mut r = open(&sealed, KIND_PLAN).unwrap();
        assert_eq!(Vec::<u64>::decode(&mut r).unwrap(), vec![1, 2, 3]);
        r.finish().unwrap();

        // Wrong kind.
        assert_eq!(
            open(&sealed, KIND_STORE).unwrap_err(),
            SnapshotError::WrongKind {
                found: KIND_PLAN,
                expected: KIND_STORE
            }
        );

        // Bad magic.
        let mut bad = sealed.clone();
        bad[0] ^= 0xff;
        assert_eq!(open(&bad, KIND_PLAN).unwrap_err(), SnapshotError::BadMagic);

        // Future version.
        let mut vers = sealed.clone();
        vers[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        assert_eq!(
            open(&vers, KIND_PLAN).unwrap_err(),
            SnapshotError::UnsupportedVersion {
                found: SNAPSHOT_VERSION + 1
            }
        );

        // Truncated payload.
        let cut = &sealed[..sealed.len() - 3];
        assert_eq!(open(cut, KIND_PLAN).unwrap_err(), SnapshotError::Truncated);

        // Flipped payload byte.
        let mut flip = sealed.clone();
        let last = flip.len() - 1;
        flip[last] ^= 1;
        assert_eq!(
            open(&flip, KIND_PLAN).unwrap_err(),
            SnapshotError::ChecksumMismatch
        );

        // Trailing garbage.
        let mut long = sealed.clone();
        long.push(0);
        assert!(matches!(
            open(&long, KIND_PLAN).unwrap_err(),
            SnapshotError::Malformed(_)
        ));
    }

    #[test]
    fn truncated_header_is_an_error() {
        assert_eq!(
            open(&SNAPSHOT_MAGIC[..5], KIND_PLAN).unwrap_err(),
            SnapshotError::Truncated
        );
        assert_eq!(open(&[], KIND_PLAN).unwrap_err(), SnapshotError::Truncated);
    }

    #[test]
    fn corrupt_length_does_not_overallocate() {
        // A Vec whose recorded length far exceeds the remaining bytes must fail with
        // Truncated, not attempt the allocation.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(matches!(
            Vec::<u64>::decode(&mut r),
            Err(SnapshotError::Truncated) | Err(SnapshotError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_length_prefix_is_malformed_before_allocating() {
        // A Vec length claiming more elements than bytes remain is rejected up front
        // with the dedicated Malformed message, before any allocation or element walk.
        let mut w = SnapshotWriter::new();
        w.put_u64(1_000);
        w.put_u64(42); // only 8 bytes of element data follow
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(
            Vec::<u64>::decode(&mut r).unwrap_err(),
            SnapshotError::Malformed("length prefix exceeds buffer")
        );

        // Same guard on String byte lengths, map entry counts, and DistVec chunks.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(
            String::decode(&mut r).unwrap_err(),
            SnapshotError::Malformed("length prefix exceeds buffer")
        );
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(
            BTreeMap::<u64, u64>::decode(&mut r).unwrap_err(),
            SnapshotError::Malformed("length prefix exceeds buffer")
        );
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(
            DistVec::<u64>::decode(&mut r).unwrap_err(),
            SnapshotError::Malformed("length prefix exceeds buffer")
        );
    }

    #[test]
    fn config_round_trips_bit_exact() {
        let cfg = MpcConfig::new(4096, 0.5)
            .with_memory_slack(64.0)
            .with_bandwidth_slack(64.0)
            .with_strict(true)
            .with_parallel(false)
            .with_radix(false);
        let mut w = SnapshotWriter::new();
        cfg.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = MpcConfig::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn state_summary_round_trips() {
        let s = StateSummary {
            states: 4,
            has_attach: true,
            values: vec![Some(7), None, Some(-3), Some(0)],
        };
        let mut w = SnapshotWriter::new();
        s.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(StateSummary::decode(&mut r).unwrap(), s);
        r.finish().unwrap();
    }
}
