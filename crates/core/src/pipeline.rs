//! End-to-end pipeline: the paper's three-step approach
//! (Section 1.4) packaged behind one API.
//!
//! 1. **Normalize** the input representation into the standard rooted edge list
//!    (`O(log D)` rounds, Section 3 — only `O(1)` for already-rooted representations).
//! 2. **Degree-reduce and cluster**: replace high-degree nodes by `O(1)`-depth auxiliary
//!    trees (Section 4.4) and build the hierarchical clustering (`O(log D)` rounds,
//!    Section 4).
//! 3. **Solve** any number of DP problems on the same clustering, each in `O(1)` rounds
//!    (Section 5). The clustering is computed once per input topology and reused — this
//!    is the headline structural message of the paper.

use crate::plan::{build_plan, SolvePlan};
use crate::problem::ClusterDp;
use crate::solver::{solve_dp, solve_dp_with_store, DpSolution, EdgeData};
use crate::store::SolverStore;
use mpc_engine::{DistVec, MpcContext, Words};
use std::cell::OnceCell;
use tree_clustering::{build_clustering, reduce_degrees, ClusterError, Clustering, EdgeKind};
use tree_repr::{normalize, DirectedEdge, NodeId, TreeInput};

/// Errors of the end-to-end pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The input representation was malformed (unbalanced parentheses, several roots,
    /// a cycle, ...).
    MalformedInput,
    /// The clustering construction failed.
    Clustering(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::MalformedInput => write!(f, "malformed tree input"),
            PipelineError::Clustering(msg) => write!(f, "clustering failed: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<ClusterError> for PipelineError {
    fn from(e: ClusterError) -> Self {
        PipelineError::Clustering(e.0)
    }
}

/// A tree that has been normalized, degree-reduced, and hierarchically clustered —
/// ready to solve any number of DP problems in `O(1)` additional rounds each.
#[derive(Debug, Clone)]
pub struct PreparedTree {
    /// The hierarchical clustering (reusable across problems and input labellings).
    pub clustering: Clustering,
    /// Edges of the degree-reduced tree with their kinds.
    pub edges: DistVec<(DirectedEdge, EdgeKind)>,
    /// The root node.
    pub root: NodeId,
    /// Number of nodes after degree reduction (original + auxiliary).
    pub num_nodes: usize,
    /// Number of original nodes.
    pub original_nodes: usize,
    /// For every auxiliary node, the original node it stands in for.
    pub aux_to_original: DistVec<(NodeId, NodeId)>,
    /// The lazily built, cached [`SolvePlan`] (see [`plan`](Self::plan)): the
    /// problem-independent view assembly is charged at most once per prepared tree.
    pub(crate) plan: OnceCell<SolvePlan>,
}

/// Run steps 1 and 2 of the pipeline: normalize any representation, reduce degrees, and
/// build the hierarchical clustering. `threshold` overrides `n^{δ/2}` (useful for small
/// test inputs and ablations).
pub fn prepare(
    ctx: &mut MpcContext,
    input: TreeInput,
    threshold: Option<usize>,
) -> Result<PreparedTree, PipelineError> {
    let normalized = ctx
        .phase("normalize", |ctx| normalize(ctx, input))
        .ok_or(PipelineError::MalformedInput)?;
    let threshold = threshold
        .unwrap_or_else(|| ctx.config().n_half_delta())
        .max(2);
    let reduced = ctx
        .phase("degree-reduction", |ctx| {
            reduce_degrees(
                ctx,
                &normalized.edges,
                normalized.root,
                normalized.num_nodes,
                threshold,
            )
        })
        .ok_or(PipelineError::MalformedInput)?;
    let plain_edges: DistVec<DirectedEdge> = reduced.edges.clone().map_local(|(e, _)| *e);
    let clustering = ctx.phase("clustering", |ctx| {
        build_clustering(
            ctx,
            &plain_edges,
            reduced.root,
            reduced.num_nodes,
            Some(threshold),
        )
    })?;
    Ok(PreparedTree {
        clustering,
        edges: reduced.edges,
        root: reduced.root,
        num_nodes: reduced.num_nodes,
        original_nodes: reduced.original_nodes,
        aux_to_original: reduced.aux_to_original,
        plan: OnceCell::new(),
    })
}

impl PreparedTree {
    /// Solve one DP problem on the prepared tree (`O(1)` rounds).
    ///
    /// * `node_inputs` — inputs of the *original* nodes.
    /// * `aux_input` — the input assigned to every auxiliary node introduced by degree
    ///   reduction (e.g. weight 0 for MaxIS).
    /// * `edge_inputs` — optional per-edge inputs keyed by the edge's child endpoint.
    pub fn solve<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        problem: &P,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
    ) -> DpSolution<P> {
        ctx.phase("dp-solve", |ctx| {
            let all_inputs = self.assemble_inputs(node_inputs, aux_input);
            let edge_data = self.assemble_edge_data(ctx, edge_inputs);
            solve_dp(ctx, &self.clustering, problem, &all_inputs, &edge_data)
        })
    }

    /// Like [`solve`](Self::solve), but additionally return the [`SolverStore`] of
    /// per-cluster records so that batched input updates can be re-solved
    /// incrementally (the `tree-dp-incremental` crate builds on this).
    pub fn solve_with_store<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        problem: &P,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
    ) -> (DpSolution<P>, SolverStore<P>) {
        ctx.phase("dp-solve", |ctx| {
            let all_inputs = self.assemble_inputs(node_inputs, aux_input);
            let edge_data = self.assemble_edge_data(ctx, edge_inputs);
            solve_dp_with_store(ctx, &self.clustering, problem, &all_inputs, &edge_data)
        })
    }

    /// The full per-node input table: the caller's original-node inputs plus
    /// `aux_input` for every auxiliary node introduced by degree reduction
    /// (machine-local, 0 rounds).
    pub fn assemble_inputs<I: Clone>(
        &self,
        node_inputs: &DistVec<(NodeId, I)>,
        aux_input: I,
    ) -> DistVec<(NodeId, I)> {
        let aux_inputs: DistVec<(NodeId, I)> = self
            .aux_to_original
            .clone()
            .map_local(|(aux, _)| (*aux, aux_input.clone()));
        node_inputs.clone().concat_local(aux_inputs)
    }

    /// The shared [`SolvePlan`] of this prepared tree: the problem-independent view
    /// assembly (per-layer member groupings, member-tree links, boundary edges,
    /// routing indexes), built **once** on first call (charged under `plan-build`)
    /// and cached — subsequent calls return the cached plan for free. Any number of
    /// DP problems can then be solved over it with [`SolvePlan::solve`], each
    /// charging only its problem-dependent payload/summary/label exchanges.
    pub fn plan(&self, ctx: &mut MpcContext) -> &SolvePlan {
        self.plan
            .get_or_init(|| build_plan(ctx, &self.clustering, &self.edges, &self.aux_to_original))
    }

    /// Build a fresh [`SolvePlan`] for this tree, bypassing (and not touching) the
    /// [`plan`](Self::plan) cache. Every call re-charges the full `plan-build` phase —
    /// this is the primitive an external plan cache (e.g. the serving layer's
    /// memory-budgeted cache) uses to make eviction a *real* cost: after dropping a
    /// tenant's plan, the rebuild goes through here and the miss shows up in rounds.
    pub fn plan_uncached(&self, ctx: &mut MpcContext) -> SolvePlan {
        build_plan(ctx, &self.clustering, &self.edges, &self.aux_to_original)
    }

    /// Whether a [`SolvePlan`] is currently cached on this tree (built by a prior
    /// [`plan`](Self::plan) call or restored from a snapshot).
    pub fn has_plan(&self) -> bool {
        self.plan.get().is_some()
    }

    /// Approximate resident size of the prepared tree in machine words: clustering
    /// elements, the degree-reduced edge list, the aux-node map, and the cached plan
    /// (when built). The serving layer reports this as per-tenant resident bytes.
    pub fn resident_words(&self) -> usize {
        let plan = self.plan.get().map_or(0, SolvePlan::resident_words);
        8 + self.clustering.elements.total_words()
            + self.edges.total_words()
            + self.aux_to_original.total_words()
            + plan
    }

    /// Solve one DP problem through the cached [`SolvePlan`] (building it on first
    /// use): same contract and bit-identical results as [`solve`](Self::solve), but
    /// after the first call every further problem pays only the cheap evaluation
    /// pass instead of a full sort-join assembly.
    pub fn solve_planned<P: ClusterDp>(
        &self,
        ctx: &mut MpcContext,
        problem: &P,
        node_inputs: &DistVec<(NodeId, P::NodeInput)>,
        aux_input: P::NodeInput,
        edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
    ) -> DpSolution<P> {
        self.plan(ctx)
            .solve(ctx, problem, node_inputs, aux_input, edge_inputs)
    }

    /// Splice a planned structural repair (see [`tree_clustering::plan_repair`]) into
    /// every cached representation of this tree: the clustering's element list, the
    /// degree-reduced edge list, the aux-node map, the node counts, and — when one is
    /// cached — the [`SolvePlan`] skeletons and routing indexes.
    ///
    /// Host-side surgery, zero rounds (the incremental solver's `inc-struct` phase
    /// meters the moved words). The repair must have been planned against this tree's
    /// current clustering; applying a stale repair corrupts the state.
    // mpc-cost: rounds(const)
    pub fn apply_structural_repair(
        &mut self,
        ctx: &mut MpcContext,
        repair: &tree_clustering::ClusteringRepair,
    ) {
        // Edge list: drop every edge out of the removed set (all such edges have their
        // child endpoint in it), append the new leaf edges (always Original: links
        // attach original-id leaves below original nodes).
        let kept = self
            .edges
            .clone()
            .filter_local(|(e, _)| !repair.removed_nodes.contains(&e.child));
        let added: DistVec<(DirectedEdge, EdgeKind)> = ctx.from_vec(
            repair
                .added_leaves
                .iter()
                .map(|l| (l.out_edge, EdgeKind::Original))
                .collect(),
        );
        self.edges = kept.concat_local(added);

        // Clustering elements: drop, demote, append.
        let mut elements = self.clustering.elements.to_vec();
        repair.patch_elements(&mut elements);
        self.clustering.elements = ctx.from_vec(elements);
        self.clustering.num_nodes = repair.new_num_nodes;

        // Aux map and node counts.
        self.aux_to_original = self
            .aux_to_original
            .clone()
            .filter_local(|(aux, _)| !repair.removed_aux.contains(aux));
        let removed_originals = repair.removed_nodes.len() - repair.removed_aux.len();
        self.original_nodes = self.original_nodes - removed_originals + repair.added_leaves.len();
        self.num_nodes = repair.new_num_nodes;

        // Cached plan: splice the skeletons and re-derive the routing indexes against
        // the post-repair edge set.
        if self.plan.get().is_some() {
            let edge_children: std::collections::BTreeSet<NodeId> =
                self.edges.iter().map(|(e, _)| e.child).collect();
            if let Some(plan) = self.plan.get_mut() {
                plan.apply_repair(repair, &edge_children);
            }
        }
    }

    /// Install an externally held [`SolvePlan`] as this tree's cached plan (replacing
    /// any cached one). The serving layer uses this handshake to let a structural
    /// repair splice the plan it keeps in its memory-budgeted cache: take the plan out
    /// of the cache, install it here, run the repair, then [`take_plan`](Self::take_plan)
    /// it back.
    // mpc-cost: rounds(const)
    pub fn install_plan(&mut self, plan: SolvePlan) {
        self.plan.take();
        let _ = self.plan.set(plan);
    }

    /// Remove and return the cached [`SolvePlan`], leaving the tree plan-less (the
    /// next [`plan`](Self::plan) call re-charges a full `plan-build`). This is also
    /// the plan-invalidation primitive: a caller that mutated the tree in a way the
    /// splice cannot follow (e.g. a degraded re-prepare) drops the stale plan here.
    // mpc-cost: rounds(const)
    pub fn take_plan(&mut self) -> Option<SolvePlan> {
        self.plan.take()
    }

    /// Reconstruct the *original* (pre-degree-reduction) child→parent edge list,
    /// host-side: auxiliary fan-out edges vanish and edges re-targeted at an auxiliary
    /// parent are mapped back to the original node it stands in for. The degraded
    /// structural path re-prepares from this list after applying a batch that local
    /// repair cannot absorb.
    // mpc-cost: rounds(const)
    pub fn original_edge_list(&self) -> Vec<DirectedEdge> {
        let aux_map: std::collections::BTreeMap<NodeId, NodeId> =
            self.aux_to_original.iter().copied().collect();
        self.edges
            .iter()
            .filter(|(_, kind)| *kind == EdgeKind::Original)
            .map(|(e, _)| {
                let parent = aux_map.get(&e.parent).copied().unwrap_or(e.parent);
                DirectedEdge::new(e.child, parent)
            })
            .collect()
    }

    /// The per-edge data table the solver consumes: kinds from the degree-reduced
    /// edge list, inputs from the caller (edges without a caller record default to
    /// `E::default()`).
    pub fn assemble_edge_data<E: Clone + Default + Words + Send + Sync + 'static>(
        &self,
        ctx: &mut MpcContext,
        edge_inputs: &DistVec<(NodeId, E)>,
    ) -> DistVec<EdgeData<E>> {
        let edge_data_raw =
            ctx.join_lookup(self.edges.clone(), |(e, _)| e.child, edge_inputs, |x| x.0);
        edge_data_raw.map_local(|((edge, kind), input)| EdgeData {
            child: edge.child,
            kind: *kind,
            input: input.as_ref().map(|x| x.1.clone()).unwrap_or_default(),
        })
    }

    /// Number of layers of the underlying clustering.
    pub fn num_layers(&self) -> u32 {
        self.clustering.num_layers
    }
}

/// Convenience: prepare and solve a single problem in one call, returning the solution
/// together with the prepared tree (so further problems can reuse the clustering).
///
/// The solve goes through the shared [`SolvePlan`], which stays cached on the returned
/// [`PreparedTree`] — every further problem solved via
/// [`solve_planned`](PreparedTree::solve_planned) (or `prepared.plan(ctx).solve(..)`)
/// pays only the cheap evaluation pass.
#[allow(clippy::type_complexity)]
pub fn prepare_and_solve<P: ClusterDp>(
    ctx: &mut MpcContext,
    input: TreeInput,
    threshold: Option<usize>,
    problem: &P,
    node_inputs: &DistVec<(NodeId, P::NodeInput)>,
    aux_input: P::NodeInput,
    edge_inputs: &DistVec<(NodeId, P::EdgeInput)>,
) -> Result<(PreparedTree, DpSolution<P>), PipelineError> {
    let prepared = prepare(ctx, input, threshold)?;
    let solution = prepared.solve_planned(ctx, problem, node_inputs, aux_input, edge_inputs);
    Ok((prepared, solution))
}
