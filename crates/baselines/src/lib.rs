//! # `tree-dp-baselines` — comparison baselines
//!
//! * [`bateni`] — a simplified re-implementation of the `O(log n)`-round *randomized*
//!   MPC tree-contraction DP of Bateni, Behnezhad, Derakhshan, Hajiaghayi and Mirrokni
//!   (ICALP'18 / arXiv:1809.03685), the algorithm the paper improves upon. It solves
//!   MaxIS-style problems by alternating randomized rake (leaf removal) and compress
//!   (path halving) steps; every iteration costs `O(1)` MPC rounds and the number of
//!   iterations is `Θ(log n)` regardless of the diameter.
//! * [`rake_compress`] — a deterministic rake-and-compress subtree-size computation,
//!   used as the ablation partner of the `O(log D)`-round capped descendant-set
//!   doubling (see DESIGN.md, experiment E12).
//!
//! The sequential oracle lives in `tree-dp-core::solve_sequential`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bateni;
mod rake_compress;

pub use bateni::{bateni_max_is, BateniResult};
pub use rake_compress::rake_compress_subtree_sizes;
