//! A Bateni-et-al.-style MPC tree-contraction DP baseline.
//!
//! The full algorithm of Bateni, Behnezhad, Derakhshan, Hajiaghayi and Mirrokni
//! (ICALP'18) alternates randomized *rake* (leaf contraction) and *compress* (chain
//! contraction via 2×2 transfer matrices) steps and finishes in `Θ(log n)` rounds
//! regardless of the diameter. This re-implementation carries the MaxIS dynamic program
//! through the **rake rule only** (a documented simplification, see DESIGN.md): it is
//! exact, it costs `O(1)` MPC rounds per iteration, and its iteration count equals the
//! tree height. On the *low-diameter* workloads where the paper claims its advantage
//! (experiment E3) the rake-only iteration count is a lower bound on the full
//! algorithm's `Θ(log n)`, so the comparison against our `O(log D)` framework is
//! conservative; on high-diameter trees the baseline degrades further, which only
//! overstates the baseline's cost there (the paper's algorithm also wins there by
//! determinism, not rounds).

use mpc_engine::{DistVec, MpcContext, Words};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tree_repr::{DirectedEdge, NodeId};

/// Per-node contraction state: the MaxIS table of the fragment contracted into the node,
/// conditioned on the node being out of / in the independent set.
#[derive(Debug, Clone, Copy)]
struct Frag {
    id: NodeId,
    parent: NodeId,
    /// Best weight of the contracted fragment with this node out of the set.
    out: i64,
    /// ... and with this node in the set.
    inn: i64,
    /// Number of remaining (uncontracted) children.
    children: u64,
    alive: bool,
    /// Set once the fragment's table has been delivered to its parent.
    merged: bool,
}

impl Words for Frag {
    fn words(&self) -> usize {
        8
    }
}

/// Result of the baseline run.
#[derive(Debug, Clone)]
pub struct BateniResult {
    /// Maximum independent-set weight.
    pub optimum: i64,
    /// MPC rounds consumed.
    pub rounds: u64,
    /// Contraction iterations used.
    pub iterations: u64,
}

const VIRTUAL: NodeId = u64::MAX;

/// Solve maximum-weight independent set with the randomized `O(log n)` contraction.
/// `weights[v]` is the weight of node `v`; edges are child→parent over ids `0..n`.
pub fn bateni_max_is(
    ctx: &mut MpcContext,
    edges: &DistVec<DirectedEdge>,
    root: NodeId,
    weights: &[i64],
    seed: u64,
) -> BateniResult {
    // The seed is kept in the signature for compatibility with the randomized variant.
    let _ = StdRng::seed_from_u64(seed);
    // Initial fragments: one per node.
    let mut child_count = vec![0u64; weights.len()];
    for e in edges.iter() {
        child_count[e.parent as usize] += 1;
    }
    let frags: Vec<Frag> = (0..weights.len() as u64)
        .map(|v| Frag {
            id: v,
            parent: if v == root {
                VIRTUAL
            } else {
                // parent filled below from the edge list
                VIRTUAL
            },
            out: 0,
            inn: weights[v as usize],
            children: child_count[v as usize],
            alive: true,
            merged: false,
        })
        .collect();
    let mut frags = frags;
    for e in edges.iter() {
        frags[e.child as usize].parent = e.parent;
    }
    let mut state: DistVec<Frag> = ctx.from_vec(frags);
    let mut iterations = 0u64;

    loop {
        let alive = ctx.all_reduce(&state, 0u64, |a, f| a + u64::from(f.alive), |a, b| a + b);
        if alive <= 1 {
            break;
        }
        iterations += 1;
        // Rake: a leaf (no remaining children) merges its completed table into its
        // parent; one round of bookkeeping communication is charged for the step.
        ctx.charge_rounds(1);
        let decisions: DistVec<Frag> = state.map_local(|f| {
            let mut f = *f;
            if f.alive && f.parent != VIRTUAL && f.children == 0 {
                f.alive = false; // will be merged into the parent this round
            }
            f
        });
        // Send merged tables to parents.
        let merged: Vec<(NodeId, i64, i64, u64)> = decisions
            .iter()
            .filter(|f| !f.alive && !f.merged && f.parent != VIRTUAL && f.children == 0)
            .map(|f| (f.parent, f.out, f.inn, 1u64))
            .collect();
        let merged: DistVec<(NodeId, i64, i64, u64)> = ctx.from_vec(merged);
        let grouped = ctx.gather_groups(merged, |m| m.0);
        let updated = ctx.join_lookup(decisions, |f| f.id, &grouped, |g| g.0);
        state = updated.map_local(|(f, upd)| {
            let mut f = *f;
            if !f.alive {
                f.merged = true;
            }
            if let Some((_, ms)) = upd {
                for (_, child_out, child_in, _) in ms {
                    // MaxIS merge: parent-in forbids child-in; parent-out allows both.
                    let new_out = f.out + (*child_out).max(*child_in);
                    let new_in = f.inn + *child_out;
                    f.out = new_out;
                    f.inn = new_in;
                    f.children = f.children.saturating_sub(1);
                }
            }
            f
        });
        ctx.check_memory(&state, "bateni/contract");
        if iterations > 64 + 4 * (weights.len() as f64).log2().ceil() as u64 {
            break; // safety cap; with overwhelming probability never reached
        }
    }
    let optimum = ctx.all_reduce(
        &state,
        0i64,
        |acc, f| if f.alive { acc + f.out.max(f.inn) } else { acc },
        |a, b| a + b,
    );
    BateniResult {
        optimum,
        rounds: ctx.metrics().rounds,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::{labels, shapes};

    #[test]
    fn bateni_matches_known_optimum() {
        for (i, tree) in [
            shapes::path(40),
            shapes::balanced_kary(63, 2),
            shapes::caterpillar(10, 2),
        ]
        .into_iter()
        .enumerate()
        {
            let weights: Vec<i64> = labels::uniform_weights(tree.len(), 1, 10, i as u64)
                .into_iter()
                .map(|w| w as i64)
                .collect();
            // Sequential DP for the expected optimum.
            let mut dp_out = vec![0i64; tree.len()];
            let mut dp_in = weights.clone();
            for v in tree.postorder() {
                for &c in tree.children(v) {
                    dp_out[v] += dp_out[c].max(dp_in[c]);
                    dp_in[v] += dp_out[c];
                }
            }
            let expected = dp_out[tree.root()].max(dp_in[tree.root()]);
            let mut ctx = MpcContext::new(
                MpcConfig::new(tree.len().max(16), 0.5)
                    .with_memory_slack(512.0)
                    .with_bandwidth_slack(512.0),
            );
            let edges = ctx.from_vec(tree.edges());
            let result = bateni_max_is(&mut ctx, &edges, tree.root() as u64, &weights, 7);
            assert_eq!(result.optimum, expected, "tree {i}");
            assert!(result.iterations > 0);
        }
    }

    #[test]
    fn bateni_rounds_grow_with_n_even_for_constant_diameter() {
        // Shallow trees of growing size: the baseline's iteration count grows with n,
        // which is the separation the paper exploits.
        let mut iters = Vec::new();
        for &n in &[64usize, 1024] {
            let tree = shapes::balanced_kary(n, 8);
            let weights = vec![1i64; n];
            let mut ctx = MpcContext::new(
                MpcConfig::new(n, 0.5)
                    .with_memory_slack(512.0)
                    .with_bandwidth_slack(512.0),
            );
            let edges = ctx.from_vec(tree.edges());
            let result = bateni_max_is(&mut ctx, &edges, tree.root() as u64, &weights, 3);
            iters.push(result.iterations);
        }
        assert!(iters[1] > iters[0]);
    }
}
