//! Deterministic rake-and-compress subtree sizes: an `O(log n)`-round alternative to the
//! `O(log D)`-round capped descendant-set doubling of `tree-clustering::subroutines`
//! (ablation experiment E12 in DESIGN.md).

use mpc_engine::{DistVec, MpcContext, Words};
use tree_repr::{DirectedEdge, NodeId};

#[derive(Debug, Clone, Copy)]
struct Node {
    id: NodeId,
    parent: NodeId,
    pending_children: u64,
    accumulated: u64,
    done: bool,
}

impl Words for Node {
    fn words(&self) -> usize {
        5
    }
}

/// Compute the exact subtree size of every node by repeatedly raking completed leaves
/// into their parents. The number of iterations is the tree height (≤ `n`), each costing
/// `O(1)` rounds; returned together with the iteration count for the ablation bench.
pub fn rake_compress_subtree_sizes(
    ctx: &mut MpcContext,
    edges: &DistVec<DirectedEdge>,
    root: NodeId,
    num_nodes: usize,
) -> (Vec<(NodeId, u64)>, u64) {
    let mut child_count = vec![0u64; num_nodes];
    let mut parent = vec![u64::MAX; num_nodes];
    for e in edges.iter() {
        child_count[e.parent as usize] += 1;
        parent[e.child as usize] = e.parent;
    }
    let nodes: Vec<Node> = (0..num_nodes as u64)
        .map(|v| Node {
            id: v,
            parent: if v == root {
                u64::MAX
            } else {
                parent[v as usize]
            },
            pending_children: child_count[v as usize],
            accumulated: 1,
            done: false,
        })
        .collect();
    let mut state = ctx.from_vec(nodes);
    let mut sizes: Vec<(NodeId, u64)> = Vec::new();
    let mut iterations = 0u64;
    loop {
        let remaining = ctx.all_reduce(&state, 0u64, |a, n| a + u64::from(!n.done), |a, b| a + b);
        if remaining == 0 {
            break;
        }
        iterations += 1;
        // Nodes whose children are all accounted for publish their size to their parent.
        let ready: Vec<(NodeId, u64)> = state
            .iter()
            .filter(|n| !n.done && n.pending_children == 0)
            .map(|n| (n.parent, n.accumulated))
            .collect();
        for n in state.iter().filter(|n| !n.done && n.pending_children == 0) {
            sizes.push((n.id, n.accumulated));
        }
        let ready_dv: DistVec<(NodeId, u64)> = ctx.from_vec(ready);
        let grouped = ctx.gather_groups(ready_dv, |r| r.0);
        let joined = ctx.join_lookup(state, |n| n.id, &grouped, |g| g.0);
        state = joined.map_local(|(n, upd)| {
            let mut n = *n;
            if n.pending_children == 0 && !n.done {
                n.done = true;
            }
            if let Some((_, contributions)) = upd {
                for (_, size) in contributions {
                    n.accumulated += size;
                    n.pending_children = n.pending_children.saturating_sub(1);
                }
            }
            n
        });
        if iterations > num_nodes as u64 + 2 {
            break;
        }
    }
    (sizes, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::shapes;

    #[test]
    fn sizes_match_host_computation() {
        for tree in [
            shapes::path(30),
            shapes::balanced_kary(31, 2),
            shapes::spider(3, 5),
        ] {
            let mut ctx = MpcContext::new(
                MpcConfig::new(tree.len().max(16), 0.5)
                    .with_memory_slack(512.0)
                    .with_bandwidth_slack(512.0),
            );
            let edges = ctx.from_vec(tree.edges());
            let (sizes, iters) =
                rake_compress_subtree_sizes(&mut ctx, &edges, tree.root() as u64, tree.len());
            let expected = tree.subtree_sizes();
            assert_eq!(sizes.len(), tree.len());
            for (v, s) in sizes {
                assert_eq!(s as usize, expected[v as usize], "node {v}");
            }
            assert!(iters as usize >= tree.height());
        }
    }
}
