//! # `mpc-tree-dp` — fast dynamic programming in trees in the MPC model
//!
//! Facade crate re-exporting the full framework that reproduces
//! *"Fast Dynamic Programming in Trees in the MPC Model"* (SPAA 2023):
//!
//! * [`mpc`] — the MPC simulator (machines, rounds, memory accounting, primitives),
//! * [`repr`] — tree representations and their normalization (Section 3),
//! * [`clustering`] — the `O(log D)`-round hierarchical clustering (Section 4),
//! * [`core`] — the DP framework and solver (Definition 1, Section 5),
//! * [`incremental`] — batched input *and* structural (link/cut) updates re-solved
//!   on the cached clustering,
//! * [`server`] — the multi-tenant serving layer (snapshot persistence,
//!   memory-budgeted plan cache, admission batching, per-tenant metrics),
//! * [`problems`] — the Table-1 problem library,
//! * [`baselines`] — the Bateni-et-al.-style `O(log n)` baseline and ablations,
//! * [`gen`] — synthetic workload generators.
//!
//! See `examples/quickstart.rs` for a five-minute tour and
//! `examples/streaming_updates.rs` for the incremental-update workflow.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mpc_engine as mpc;
pub use tree_clustering as clustering;
pub use tree_dp_baselines as baselines;
pub use tree_dp_core as core;
pub use tree_dp_incremental as incremental;
pub use tree_dp_problems as problems;
pub use tree_dp_server as server;
pub use tree_gen as gen;
pub use tree_repr as repr;

pub use mpc_engine::{DistVec, MpcConfig, MpcContext, SortKey, SortedTable};
pub use tree_dp_core::{
    prepare, ClusterDp, DpSolution, PreparedTree, Snapshot, SnapshotError, SolvePlan, SolverStore,
    StateDp, StateEngine,
};
pub use tree_dp_incremental::{
    IncrementalSolver, StructuralBatch, StructuralError, StructuralOp, StructuralStats, UpdateStats,
};
pub use tree_dp_server::{
    CacheStats, Request, Response, ServerConfig, ServerError, TenantMetrics, TenantSpec,
    TreeDpServer,
};
pub use tree_repr::{ListOfEdges, StringOfParentheses, Tree, TreeInput};
