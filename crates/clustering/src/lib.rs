//! # `tree-clustering` — hierarchical clustering of rooted trees in the MPC model
//!
//! This crate implements Section 4 of *"Fast Dynamic Programming in Trees in the MPC
//! Model"* (SPAA 2023): a deterministic `O(log D)`-round construction of a
//! **hierarchical clustering** (Definition 3) of a rooted tree, the universal reusable
//! representation on which any dynamic programming problem can then be solved in `O(1)`
//! additional rounds (see the `tree-dp-core` crate).
//!
//! The clustering has `O(1)` layers; every cluster has at most `n^δ`-many member
//! elements, exactly one outgoing original edge and at most one incoming original edge.
//!
//! * [`build_clustering`] — the construction (Section 4.2), alternating indegree-0 and
//!   indegree-1 contraction steps.
//! * [`subroutines`] — re-implementations of the `CountSubtreeSizes` / `CountDistances`
//!   primitives the paper cites from Balliu et al. (SODA 2023).
//! * [`reduce_degrees`] — the high-degree-node transformation of Section 4.4.
//! * [`Clustering`] — the output, with a structural validator used by the test suite.
//! * [`repair`] — host-side local repair of an existing clustering under batched
//!   link/cut structural updates (degrading to a full rebuild only when a clustering
//!   bound would be violated).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod clustering;
pub mod degree;
pub mod element;
pub mod repair;
pub mod subroutines;

pub use builder::{build_clustering, ClusterError};
pub use clustering::{Clustering, ClusteringViolation};
pub use degree::{is_aux_node, reduce_degrees, DegreeReduced, AUX_BASE};
pub use element::{
    is_cluster_id, make_cluster_id, EdgeKind, Element, ElementId, ElementKind, CLUSTER_FLAG,
    UNABSORBED, VIRTUAL_NODE,
};
pub use repair::{
    plan_repair, ClusterPatch, ClusteringRepair, DegradeReason, RepairError, RepairOutcome,
    TopologyOp,
};
