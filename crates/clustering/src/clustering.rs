//! The hierarchical clustering output type and its (test-oriented) validator.

use crate::element::{Element, ElementId, ElementKind, UNABSORBED, VIRTUAL_NODE};
use mpc_engine::DistVec;
use std::collections::{BTreeMap, BTreeSet};
use tree_repr::{DirectedEdge, NodeId};

/// A hierarchical clustering of a rooted tree (Definition 3 of the paper), in the
/// explicit, id-and-pointer form used algorithmically (Section 4.1).
///
/// Every original node and every cluster created during construction appears exactly
/// once in [`elements`](Self::elements); an element's `absorbed_into` / `absorbed_at`
/// fields encode the layer structure. The clustering depends only on the tree topology
/// and can be reused for any number of DP problems and input labellings (Section 1.4).
#[derive(Debug, Clone)]
pub struct Clustering {
    /// Number of nodes of the (degree-reduced) input tree.
    pub num_nodes: usize,
    /// Root node of the input tree.
    pub root: NodeId,
    /// Highest layer index used (the top cluster lives at this layer).
    pub num_layers: u32,
    /// The cluster-size threshold `n^{δ/2}` that was used.
    pub threshold: usize,
    /// All elements: original nodes and clusters, with their absorption information.
    pub elements: DistVec<Element>,
    /// Id of the single topmost cluster.
    pub top_cluster: ElementId,
}

/// A violation found by [`Clustering::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusteringViolation(pub String);

impl Clustering {
    /// Host-side structural validator used by tests and the experiment harness.
    ///
    /// Checks, against the original edge set, every property of Definitions 2 and 3:
    /// every node is eventually absorbed, clusters have exactly one outgoing and at most
    /// one incoming original edge, cluster element counts stay within `n^δ`-style
    /// bounds, and the layer structure is consistent.
    pub fn validate(&self, original_edges: &[DirectedEdge]) -> Vec<ClusteringViolation> {
        let mut violations = Vec::new();
        let mut err = |msg: String| violations.push(ClusteringViolation(msg));

        let elements: Vec<Element> = self.elements.to_vec();
        let by_id: BTreeMap<ElementId, &Element> = elements.iter().map(|e| (e.id, e)).collect();
        if by_id.len() != elements.len() {
            err("duplicate element ids".to_string());
        }

        // Exactly one top cluster, never absorbed.
        let tops: Vec<&Element> = elements
            .iter()
            .filter(|e| e.kind == ElementKind::TopCluster)
            .collect();
        if tops.len() != 1 {
            err(format!(
                "expected exactly one top cluster, found {}",
                tops.len()
            ));
        } else {
            let top = tops[0];
            if top.id != self.top_cluster {
                err("top_cluster id mismatch".to_string());
            }
            if top.absorbed_into != VIRTUAL_NODE {
                err("top cluster must not be absorbed".to_string());
            }
            if top.absorbed_at != UNABSORBED {
                err("top cluster must carry the UNABSORBED absorbed_at sentinel".to_string());
            }
            if top.out_edge.parent != VIRTUAL_NODE {
                err("top cluster's outgoing edge must be the virtual root edge".to_string());
            }
        }

        // Every original node appears exactly once as a Node element and is absorbed.
        let node_elements: Vec<&Element> = elements
            .iter()
            .filter(|e| e.kind == ElementKind::Node)
            .collect();
        if node_elements.len() != self.num_nodes {
            err(format!(
                "expected {} node elements, found {}",
                self.num_nodes,
                node_elements.len()
            ));
        }
        for e in &elements {
            if e.kind != ElementKind::TopCluster {
                if !by_id.contains_key(&e.absorbed_into) {
                    err(format!("element {} absorbed into unknown cluster", e.id));
                } else if !by_id[&e.absorbed_into].kind.is_cluster() {
                    err(format!("element {} absorbed into a non-cluster", e.id));
                }
                if e.absorbed_at == 0 {
                    err(format!(
                        "element {} absorbed at layer 0 (layers are numbered from 1)",
                        e.id
                    ));
                }
                if e.absorbed_at == UNABSORBED {
                    err(format!(
                        "element {} carries the UNABSORBED sentinel but is not the top cluster",
                        e.id
                    ));
                }
                if e.absorbed_at > self.num_layers {
                    err(format!("element {} absorbed above the top layer", e.id));
                }
                if e.absorbed_at <= e.formed_at {
                    err(format!(
                        "element {} absorbed at or before its formation",
                        e.id
                    ));
                }
                if let Some(parent) = by_id.get(&e.absorbed_into) {
                    if parent.formed_at != e.absorbed_at {
                        err(format!(
                            "element {} absorbed at layer {} into a cluster formed at layer {}",
                            e.id, e.absorbed_at, parent.formed_at
                        ));
                    }
                }
            }
        }

        // Per-cluster membership and cut-edge properties.
        let mut members: BTreeMap<ElementId, Vec<&Element>> = BTreeMap::new();
        for e in &elements {
            if e.kind != ElementKind::TopCluster {
                members.entry(e.absorbed_into).or_default().push(e);
            }
        }
        for e in &elements {
            if e.kind.is_cluster() && !members.contains_key(&e.id) {
                err(format!("cluster {} has no members", e.id));
            }
        }

        // Recursively expand every cluster to its set of original nodes.
        let mut vsets: BTreeMap<ElementId, BTreeSet<NodeId>> = BTreeMap::new();
        fn vset_of(
            id: ElementId,
            by_id: &BTreeMap<ElementId, &Element>,
            members: &BTreeMap<ElementId, Vec<&Element>>,
            vsets: &mut BTreeMap<ElementId, BTreeSet<NodeId>>,
        ) -> BTreeSet<NodeId> {
            if let Some(v) = vsets.get(&id) {
                return v.clone();
            }
            let mut out = BTreeSet::new();
            match by_id.get(&id) {
                Some(e) if e.kind == ElementKind::Node => {
                    out.insert(e.id);
                }
                Some(_) => {
                    for m in members.get(&id).into_iter().flatten() {
                        out.extend(vset_of(m.id, by_id, members, vsets));
                    }
                }
                None => {}
            }
            vsets.insert(id, out.clone());
            out
        }

        // Adjacency of the original tree for cut-edge checks.
        let mut children_of: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut parent_of: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        for e in original_edges {
            children_of.entry(e.parent).or_default().push(e.child);
            parent_of.insert(e.child, e.parent);
        }

        let max_members = self.threshold * (self.threshold + 1);
        for (cluster_id, mems) in &members {
            let Some(cluster) = by_id.get(cluster_id) else {
                continue;
            };
            if mems.len() > max_members {
                err(format!(
                    "cluster {} has {} members, exceeding the n^δ-style bound {}",
                    cluster_id,
                    mems.len(),
                    max_members
                ));
            }
            let vset = vset_of(*cluster_id, &by_id, &members, &mut vsets);
            // Outgoing edges of the cluster: original edges from inside to outside.
            let mut outgoing = Vec::new();
            let mut incoming = Vec::new();
            for &v in &vset {
                if let Some(&p) = parent_of.get(&v) {
                    if !vset.contains(&p) {
                        outgoing.push(DirectedEdge::new(v, p));
                    }
                } else {
                    // v is the original root: its virtual edge leaves every cluster.
                    outgoing.push(DirectedEdge::new(v, VIRTUAL_NODE));
                }
                for &c in children_of.get(&v).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if !vset.contains(&c) {
                        incoming.push(DirectedEdge::new(c, v));
                    }
                }
            }
            if outgoing.len() != 1 {
                err(format!(
                    "cluster {} has {} outgoing edges (expected 1)",
                    cluster_id,
                    outgoing.len()
                ));
            } else if outgoing[0] != cluster.out_edge {
                err(format!(
                    "cluster {} records out_edge {:?} but the cut edge is {:?}",
                    cluster_id, cluster.out_edge, outgoing[0]
                ));
            }
            if incoming.len() > 1 {
                err(format!(
                    "cluster {} has {} incoming edges (expected at most 1)",
                    cluster_id,
                    incoming.len()
                ));
            }
            match (cluster.kind, incoming.len()) {
                (ElementKind::ClusterIndeg0, 0) | (ElementKind::TopCluster, 0) => {}
                (ElementKind::ClusterIndeg1, 1) => {
                    if cluster.in_edge != Some(incoming[0]) {
                        err(format!(
                            "cluster {} records in_edge {:?} but the cut edge is {:?}",
                            cluster_id, cluster.in_edge, incoming[0]
                        ));
                    }
                }
                (kind, k) => err(format!(
                    "cluster {} of kind {:?} has {} incoming edges",
                    cluster_id, kind, k
                )),
            }
        }

        // The top cluster must cover every original node.
        let all = vset_of(self.top_cluster, &by_id, &members, &mut vsets);
        if all.len() != self.num_nodes {
            err(format!(
                "top cluster covers {} of {} nodes",
                all.len(),
                self.num_nodes
            ));
        }

        violations
    }

    /// Maximum number of member elements over all clusters (host-side helper for
    /// experiments and tests).
    pub fn max_cluster_size(&self) -> usize {
        let mut counts: BTreeMap<ElementId, usize> = BTreeMap::new();
        for e in self.elements.iter() {
            if e.kind != ElementKind::TopCluster {
                *counts.entry(e.absorbed_into).or_default() += 1;
            }
        }
        counts.values().copied().max().unwrap_or(0)
    }

    /// Number of clusters created.
    pub fn num_clusters(&self) -> usize {
        self.elements.iter().filter(|e| e.kind.is_cluster()).count()
    }
}
