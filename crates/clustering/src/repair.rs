//! Local repair of a hierarchical clustering under batched link/cut updates.
//!
//! A full rebuild of the clustering costs `O(log D)` rounds (the construction of
//! Section 4.2); this module computes, **host-side and without any communication**, the
//! minimal patch that turns an existing [`Clustering`] into a valid clustering of the
//! mutated tree for a batch of structural operations:
//!
//! * `cut(child)` — remove the edge `child → parent` together with the whole subtree
//!   rooted at `child` (including any auxiliary nodes hanging below it), and
//! * `link(parent, child)` — attach a brand-new leaf `child` directly below an existing
//!   node `parent`.
//!
//! The repair exploits two structural facts about the clustering:
//!
//! 1. The removed node set `R` of a cut is **downward-closed** in the reduced tree, so an
//!    element vanishes exactly when its span lies inside `R` — which for a cluster is
//!    equivalent to `out_edge.child ∈ R` (the span's topmost node). Inside a surviving
//!    cluster the removed members again form a downward-closed set of the member tree,
//!    so the survivors stay connected and keep their outgoing edge. A surviving
//!    indegree-1 cluster whose incoming edge came out of `R` simply becomes an
//!    indegree-0 cluster.
//! 2. A new leaf below `parent` can join the cluster that absorbed `parent` as one more
//!    member (its absorption layer is that cluster's formation layer), without touching
//!    any cut-edge property: the leaf adds no incoming edge to any cluster.
//!
//! When a link would push a node's child count past the degree bound or a cluster past
//! its `n^δ`-style member bound, the repair refuses and reports
//! [`RepairOutcome::Degrade`]; the caller then falls back to a full re-prepare. This is
//! the locality/quality trade-off of the dynamic MPC framework (Italiano–Mirrokni):
//! batches that stay within the bounds are repaired in `O(1)` rounds, the rest pay the
//! static construction cost.

use crate::clustering::Clustering;
use crate::degree::{is_aux_node, AUX_BASE};
use crate::element::{Element, ElementId, ElementKind, VIRTUAL_NODE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use tree_repr::{DirectedEdge, NodeId};

/// One structural operation, topology only (problem inputs ride separately in the
/// incremental layer's generic batch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyOp {
    /// Attach a brand-new leaf `child` directly below the existing node `parent`.
    Link {
        /// Existing original node the new leaf hangs below.
        parent: NodeId,
        /// Fresh node id for the leaf (must not collide with any live id).
        child: NodeId,
    },
    /// Remove the edge `child → parent` and the entire subtree rooted at `child`.
    Cut {
        /// Root of the subtree to remove.
        child: NodeId,
    },
}

/// Why a batch could not be repaired locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeReason {
    /// A link would push `parent`'s direct child count in the reduced tree past the
    /// degree bound the clustering was built with.
    DegreeOverflow {
        /// The overloaded parent.
        parent: NodeId,
    },
    /// A link would push the absorbing cluster past the `threshold·(threshold+1)`
    /// member bound.
    ClusterOverflow {
        /// The overloaded cluster.
        cluster: ElementId,
    },
}

/// An invalid operation in the batch (the batch is rejected as a whole; nothing is
/// applied).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RepairError {
    /// Link below a node that does not exist (or was cut earlier in the batch). Note
    /// that auxiliary degree-reduction nodes are not addressable.
    UnknownParent(NodeId),
    /// Cut of a node that does not exist (or was already cut).
    UnknownChild(NodeId),
    /// The root cannot be cut.
    CutRoot,
    /// Link with a child id that is already a live node.
    DuplicateChild(NodeId),
    /// Link with a child id at or above [`AUX_BASE`] (reserved for auxiliary nodes).
    ReservedChildId(NodeId),
}

impl std::fmt::Display for RepairError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairError::UnknownParent(p) => write!(f, "link below unknown node {p}"),
            RepairError::UnknownChild(c) => write!(f, "cut of unknown node {c}"),
            RepairError::CutRoot => write!(f, "the root cannot be cut"),
            RepairError::DuplicateChild(c) => write!(f, "link child {c} already exists"),
            RepairError::ReservedChildId(c) => {
                write!(f, "link child {c} collides with the auxiliary id range")
            }
        }
    }
}

impl std::error::Error for RepairError {}

/// Patch for one surviving cluster's member list.
#[derive(Debug, Clone, Default)]
pub struct ClusterPatch {
    /// Layer whose views hold this cluster (its formation layer).
    pub layer: u32,
    /// Member element ids to drop (a downward-closed set of the member tree).
    pub removed_members: BTreeSet<ElementId>,
    /// `true` when the cluster's incoming edge came out of the removed set: the cluster
    /// becomes indegree-0 and its `in_edge`/attach point are cleared.
    pub clear_in_edge: bool,
    /// New leaf elements appended to the member list (their member-tree parent is the
    /// member whose element id equals the leaf's `out_edge.parent`).
    pub added: Vec<Element>,
}

impl ClusterPatch {
    /// `true` when the patch changes the member list or the cluster record at all
    /// (a patch can exist solely to mark a parent view dirty for a demoted member).
    // mpc-lint: allow(dead-pub-api) — classification accessor for patch consumers that splice selectively; part of the ClusterPatch contract even though in-tree splicers apply every patch
    pub fn is_material(&self) -> bool {
        self.clear_in_edge || !self.removed_members.is_empty() || !self.added.is_empty()
    }
}

/// The complete, host-computed description of a local clustering repair. One repair
/// drives the element-list patch, the plan splice and the solver-store splice, so the
/// three views of the clustering can never drift apart.
#[derive(Debug, Clone)]
pub struct ClusteringRepair {
    /// Element ids (nodes and clusters) that vanish entirely.
    pub removed_elements: BTreeSet<ElementId>,
    /// Reduced-tree node ids removed (`R`); also exactly the edge children whose edges
    /// and labels vanish.
    pub removed_nodes: BTreeSet<NodeId>,
    /// Surviving indegree-1 clusters demoted to indegree-0 (their incoming edge was
    /// cut). Every occurrence of these elements — their own record and their member
    /// copy in the parent view — must be rewritten.
    pub demoted: BTreeSet<ElementId>,
    /// Per-surviving-cluster patches, keyed by cluster id. Every patched cluster must
    /// be re-summarized/re-labelled (seeded dirty at `ClusterPatch::layer`).
    pub patches: BTreeMap<ElementId, ClusterPatch>,
    /// All surviving new leaf elements, in batch order. Each also appears in its
    /// absorbing cluster's [`ClusterPatch::added`].
    pub added_leaves: Vec<Element>,
    /// Node count of the reduced tree after the repair.
    pub new_num_nodes: usize,
    /// Auxiliary nodes inside the removed set (for `aux_to_original` maintenance).
    pub removed_aux: BTreeSet<NodeId>,
}

/// Outcome of planning a repair for a valid batch.
#[derive(Debug, Clone)]
pub enum RepairOutcome {
    /// The batch can be repaired locally.
    Repaired(Box<ClusteringRepair>),
    /// The batch violates a clustering bound; fall back to a full re-prepare.
    Degrade(DegradeReason),
}

/// Plan a local repair of `clustering` (built over the reduced-tree `edges`) for the
/// operation batch `ops`, applied in order.
///
/// Purely host-side: zero rounds, zero communication. Returns an error if any op is
/// invalid against the state produced by the preceding ops (the batch is then rejected
/// atomically), and [`RepairOutcome::Degrade`] when the batch is valid but exceeds a
/// degree or cluster-size bound.
pub fn plan_repair(
    clustering: &Clustering,
    edges: &[(DirectedEdge, crate::element::EdgeKind)],
    ops: &[TopologyOp],
) -> Result<RepairOutcome, RepairError> {
    let elements: Vec<Element> = clustering.elements.to_vec();
    let by_id: BTreeMap<ElementId, &Element> = elements.iter().map(|e| (e.id, e)).collect();

    // Reduced-tree adjacency (includes auxiliary nodes).
    let mut children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    let mut live: BTreeSet<NodeId> = BTreeSet::new();
    for (e, _) in edges {
        children.entry(e.parent).or_default().push(e.child);
        live.insert(e.child);
        live.insert(e.parent);
    }
    live.insert(clustering.root);

    // Batch simulation state.
    let mut removed: BTreeSet<NodeId> = BTreeSet::new();
    // Surviving links in batch order: child -> (parent, absorbing cluster).
    let mut added: BTreeMap<NodeId, (NodeId, ElementId)> = BTreeMap::new();
    let mut added_order: Vec<NodeId> = Vec::new();
    let mut added_children: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    // Parents that received at least one surviving link (for the degree check).
    let mut link_parents: BTreeSet<NodeId> = BTreeSet::new();

    for op in ops {
        match *op {
            TopologyOp::Link { parent, child } => {
                let parent_live =
                    (live.contains(&parent) && !is_aux_node(parent) && !removed.contains(&parent))
                        || added.contains_key(&parent);
                if !parent_live {
                    return Err(RepairError::UnknownParent(parent));
                }
                if child >= AUX_BASE {
                    return Err(RepairError::ReservedChildId(child));
                }
                if (live.contains(&child) && !removed.contains(&child))
                    || added.contains_key(&child)
                {
                    return Err(RepairError::DuplicateChild(child));
                }
                // The absorbing cluster: for a pre-existing parent the cluster that
                // absorbed its Node element; for a parent linked earlier in this batch,
                // the same cluster the earlier leaf joined.
                let absorber = match added.get(&parent) {
                    Some((_, a)) => *a,
                    None => {
                        let e = by_id
                            .get(&parent)
                            .ok_or(RepairError::UnknownParent(parent))?;
                        e.absorbed_into
                    }
                };
                added.insert(child, (parent, absorber));
                added_order.push(child);
                added_children.entry(parent).or_default().push(child);
                link_parents.insert(parent);
            }
            TopologyOp::Cut { child } => {
                if child == clustering.root {
                    return Err(RepairError::CutRoot);
                }
                let pre_existing =
                    live.contains(&child) && !is_aux_node(child) && !removed.contains(&child);
                if !pre_existing && !added.contains_key(&child) {
                    return Err(RepairError::UnknownChild(child));
                }
                // BFS over the current subtree (reduced-tree children, including the
                // auxiliary fan-out, plus any leaves linked earlier in this batch).
                let mut queue = VecDeque::from([child]);
                while let Some(x) = queue.pop_front() {
                    if added.remove(&x).is_some() {
                        added_order.retain(|&y| y != x);
                    } else {
                        removed.insert(x);
                    }
                    for &y in children.get(&x).map(Vec::as_slice).unwrap_or(&[]) {
                        if !removed.contains(&y) {
                            queue.push_back(y);
                        }
                    }
                    for y in added_children.remove(&x).unwrap_or_default() {
                        if added.contains_key(&y) {
                            queue.push_back(y);
                        }
                    }
                }
            }
        }
    }

    // ----- degree bound: only links can raise a node's direct child count ------------
    for &p in &link_parents {
        if added_children.get(&p).map_or(true, Vec::is_empty) {
            continue; // all links below p were cut again
        }
        let surviving_old = children
            .get(&p)
            .map(|cs| cs.iter().filter(|c| !removed.contains(c)).count())
            .unwrap_or(0);
        let new = added_children.get(&p).map(Vec::len).unwrap_or(0);
        if surviving_old + new > clustering.threshold {
            return Ok(RepairOutcome::Degrade(DegradeReason::DegreeOverflow {
                parent: p,
            }));
        }
    }

    // ----- classify elements ---------------------------------------------------------
    let mut removed_elements: BTreeSet<ElementId> = BTreeSet::new();
    let mut demoted: BTreeSet<ElementId> = BTreeSet::new();
    for e in &elements {
        let gone = match e.kind {
            ElementKind::Node => removed.contains(&e.id),
            // A cluster's span is downward-closed below its out-edge child, so the span
            // lies inside R exactly when that topmost node does.
            _ => removed.contains(&e.out_edge.child),
        };
        if gone {
            removed_elements.insert(e.id);
        } else if let Some(in_edge) = e.in_edge {
            if removed.contains(&in_edge.child) {
                demoted.insert(e.id);
            }
        }
    }

    // ----- build per-cluster patches -------------------------------------------------
    let mut patches: BTreeMap<ElementId, ClusterPatch> = BTreeMap::new();
    fn patch_for<'a>(
        by_id: &BTreeMap<ElementId, &Element>,
        patches: &'a mut BTreeMap<ElementId, ClusterPatch>,
        id: ElementId,
    ) -> &'a mut ClusterPatch {
        let layer = by_id.get(&id).map(|e| e.formed_at).unwrap_or(0);
        patches.entry(id).or_insert_with(|| ClusterPatch {
            layer,
            ..ClusterPatch::default()
        })
    }
    for e in &elements {
        if removed_elements.contains(&e.id)
            && e.absorbed_into != VIRTUAL_NODE
            && !removed_elements.contains(&e.absorbed_into)
        {
            patch_for(&by_id, &mut patches, e.absorbed_into)
                .removed_members
                .insert(e.id);
        }
    }
    for &c in &demoted {
        patch_for(&by_id, &mut patches, c).clear_in_edge = true;
        // The member copy of a demoted cluster lives in its parent's view; touch the
        // parent so the record is rewritten and the view re-solved.
        if let Some(e) = by_id.get(&c) {
            patch_for(&by_id, &mut patches, e.absorbed_into);
        }
    }

    let mut added_leaves = Vec::with_capacity(added_order.len());
    for &c in &added_order {
        let (parent, absorber) = added[&c];
        let absorber_elem = by_id
            .get(&absorber)
            .expect("absorbing cluster of a live node exists");
        let leaf = Element {
            id: c,
            kind: ElementKind::Node,
            formed_at: 0,
            absorbed_into: absorber,
            // The validator requires absorbed_at == absorbing cluster's formed_at.
            absorbed_at: absorber_elem.formed_at,
            out_edge: DirectedEdge::new(c, parent),
            in_edge: None,
        };
        patch_for(&by_id, &mut patches, absorber).added.push(leaf);
        added_leaves.push(leaf);
    }

    // ----- cluster member bound: only additions can overflow -------------------------
    let max_members = clustering.threshold * (clustering.threshold + 1);
    let mut member_count: BTreeMap<ElementId, usize> = BTreeMap::new();
    for e in &elements {
        if e.kind != ElementKind::TopCluster {
            *member_count.entry(e.absorbed_into).or_default() += 1;
        }
    }
    for (&cluster, patch) in &patches {
        if patch.added.is_empty() {
            continue;
        }
        let count = member_count.get(&cluster).copied().unwrap_or(0) - patch.removed_members.len()
            + patch.added.len();
        if count > max_members {
            return Ok(RepairOutcome::Degrade(DegradeReason::ClusterOverflow {
                cluster,
            }));
        }
    }

    let removed_aux: BTreeSet<NodeId> = removed
        .iter()
        .copied()
        .filter(|&x| is_aux_node(x))
        .collect();
    let new_num_nodes = clustering.num_nodes - removed.len() + added_order.len();

    Ok(RepairOutcome::Repaired(Box::new(ClusteringRepair {
        removed_elements,
        removed_nodes: removed,
        demoted,
        patches,
        added_leaves,
        new_num_nodes,
        removed_aux,
    })))
}

impl ClusteringRepair {
    /// Apply this repair to a flat element list: drop removed elements, demote
    /// surviving indegree-1 clusters whose incoming edge was cut, and append the new
    /// leaves. Order of survivors is preserved; new leaves go to the end in batch
    /// order.
    pub fn patch_elements(&self, elements: &mut Vec<Element>) {
        elements.retain(|e| !self.removed_elements.contains(&e.id));
        for e in elements.iter_mut() {
            if self.demoted.contains(&e.id) {
                debug_assert_eq!(e.kind, ElementKind::ClusterIndeg1);
                e.kind = ElementKind::ClusterIndeg0;
                e.in_edge = None;
            }
        }
        elements.extend(self.added_leaves.iter().copied());
    }

    /// Rewrite a single element record (e.g. the member copy held inside the parent
    /// cluster's view) to reflect a demotion. Returns `true` if the record changed.
    pub fn patch_member_record(&self, e: &mut Element) -> bool {
        if self.demoted.contains(&e.id) {
            e.kind = ElementKind::ClusterIndeg0;
            e.in_edge = None;
            true
        } else {
            false
        }
    }

    /// `true` when the repair is a pure no-op (possible when a batch links and then
    /// cuts the same leaves).
    pub fn is_noop(&self) -> bool {
        self.removed_elements.is_empty()
            && self.added_leaves.is_empty()
            && self.patches.values().all(|p| !p.is_material())
    }

    /// Total host words moved while splicing this repair into plan + store (used by the
    /// caller to meter the splice round).
    pub fn splice_words(&self) -> usize {
        // Each removed element / node drops a record; each added leaf writes one; each
        // patched cluster rewrites its (O(threshold^2)-bounded) view header.
        10 * (self.removed_elements.len() + self.added_leaves.len())
            + 4 * self.patches.len()
            + self.removed_nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::build_clustering;
    use crate::element::EdgeKind;
    use mpc_engine::{MpcConfig, MpcContext};
    use tree_gen::shapes;
    use tree_repr::Tree;

    fn clustered(
        tree: &Tree,
        threshold: usize,
    ) -> (MpcContext, Clustering, Vec<(DirectedEdge, EdgeKind)>) {
        let n = tree.len().max(16);
        let mut ctx = MpcContext::new(
            MpcConfig::new(n, 0.5)
                .with_memory_slack(512.0)
                .with_bandwidth_slack(512.0),
        );
        let dist = ctx.from_vec(tree.edges());
        let clustering = build_clustering(
            &mut ctx,
            &dist,
            tree.root() as u64,
            tree.len(),
            Some(threshold),
        )
        .expect("clustering succeeds");
        let edges: Vec<(DirectedEdge, EdgeKind)> = tree
            .edges()
            .into_iter()
            .map(|e| (e, EdgeKind::Original))
            .collect();
        (ctx, clustering, edges)
    }

    /// Apply the repair to the clustering + edge list and run the full validator.
    fn apply_and_validate(
        ctx: &mut MpcContext,
        clustering: &Clustering,
        edges: &[(DirectedEdge, EdgeKind)],
        repair: &ClusteringRepair,
    ) {
        let mut els = clustering.elements.to_vec();
        repair.patch_elements(&mut els);
        let patched = Clustering {
            num_nodes: repair.new_num_nodes,
            root: clustering.root,
            num_layers: clustering.num_layers,
            threshold: clustering.threshold,
            elements: ctx.from_vec(els),
            top_cluster: clustering.top_cluster,
        };
        let mutated: Vec<DirectedEdge> = edges
            .iter()
            .filter(|(e, _)| !repair.removed_nodes.contains(&e.child))
            .map(|(e, _)| *e)
            .chain(repair.added_leaves.iter().map(|l| l.out_edge))
            .collect();
        let violations = patched.validate(&mutated);
        assert!(
            violations.is_empty(),
            "patched clustering violations: {:?}",
            &violations[..violations.len().min(5)]
        );
    }

    fn repaired(
        clustering: &Clustering,
        edges: &[(DirectedEdge, EdgeKind)],
        ops: &[TopologyOp],
    ) -> ClusteringRepair {
        match plan_repair(clustering, edges, ops).expect("valid batch") {
            RepairOutcome::Repaired(r) => *r,
            RepairOutcome::Degrade(why) => panic!("unexpected degrade: {why:?}"),
        }
    }

    #[test]
    fn cut_leaf_on_path() {
        let tree = shapes::path(40);
        let (mut ctx, clustering, edges) = clustered(&tree, 4);
        // In shapes::path the deepest leaf is node 39 (each node's parent is its
        // predecessor).
        let repair = repaired(&clustering, &edges, &[TopologyOp::Cut { child: 39 }]);
        assert!(repair.removed_nodes.contains(&39));
        assert_eq!(repair.removed_nodes.len(), 1);
        assert_eq!(repair.new_num_nodes, 39);
        apply_and_validate(&mut ctx, &clustering, &edges, &repair);
    }

    #[test]
    fn cut_internal_subtree() {
        let tree = shapes::balanced_kary(40, 3);
        let (mut ctx, clustering, edges) = clustered(&tree, 4);
        let repair = repaired(&clustering, &edges, &[TopologyOp::Cut { child: 1 }]);
        // Node 1's subtree in a 3-ary heap ordering: children 4,5,6, etc.
        assert!(repair.removed_nodes.contains(&1));
        assert!(repair.removed_nodes.contains(&4));
        assert!(repair.removed_nodes.len() > 3);
        apply_and_validate(&mut ctx, &clustering, &edges, &repair);
    }

    #[test]
    fn link_leaf_and_chained_links() {
        let tree = shapes::path(30);
        let (mut ctx, clustering, edges) = clustered(&tree, 4);
        let repair = repaired(
            &clustering,
            &edges,
            &[
                TopologyOp::Link {
                    parent: 29,
                    child: 1000,
                },
                TopologyOp::Link {
                    parent: 1000,
                    child: 1001,
                },
            ],
        );
        assert_eq!(repair.added_leaves.len(), 2);
        assert_eq!(repair.new_num_nodes, 32);
        // Chained leaves join the same absorbing cluster as their pre-existing anchor.
        assert_eq!(
            repair.added_leaves[0].absorbed_into,
            repair.added_leaves[1].absorbed_into
        );
        apply_and_validate(&mut ctx, &clustering, &edges, &repair);
    }

    #[test]
    fn cut_then_relink_same_id() {
        let tree = shapes::caterpillar(20, 2);
        let (mut ctx, clustering, edges) = clustered(&tree, 4);
        let leaf = (tree.len() - 1) as u64;
        let parent = tree.parent(leaf as usize).expect("leaf has parent") as u64;
        let repair = repaired(
            &clustering,
            &edges,
            &[
                TopologyOp::Cut { child: leaf },
                TopologyOp::Link {
                    parent,
                    child: leaf,
                },
            ],
        );
        assert!(repair.removed_nodes.contains(&leaf));
        assert_eq!(repair.added_leaves.len(), 1);
        assert_eq!(repair.new_num_nodes, tree.len());
        apply_and_validate(&mut ctx, &clustering, &edges, &repair);
    }

    #[test]
    fn link_then_cut_is_noop() {
        let tree = shapes::path(20);
        let (_ctx, clustering, edges) = clustered(&tree, 4);
        let repair = repaired(
            &clustering,
            &edges,
            &[
                TopologyOp::Link {
                    parent: 10,
                    child: 500,
                },
                TopologyOp::Cut { child: 500 },
            ],
        );
        assert!(repair.is_noop());
        assert_eq!(repair.new_num_nodes, 20);
    }

    #[test]
    fn demotes_cluster_whose_in_edge_was_cut() {
        let tree = shapes::path(40);
        let (mut ctx, clustering, edges) = clustered(&tree, 4);
        // Cutting in the middle of a path severs some indegree-1 cluster's incoming
        // edge; the repair must demote it rather than leave a dangling in_edge.
        let repair = repaired(&clustering, &edges, &[TopologyOp::Cut { child: 20 }]);
        assert!(
            !repair.demoted.is_empty(),
            "a mid-path cut must demote at least one indegree-1 cluster"
        );
        apply_and_validate(&mut ctx, &clustering, &edges, &repair);
    }

    #[test]
    fn degree_overflow_degrades() {
        let tree = shapes::star(5);
        let (_ctx, clustering, edges) = clustered(&tree, 4);
        let ops: Vec<TopologyOp> = (0..3)
            .map(|i| TopologyOp::Link {
                parent: 0,
                child: 100 + i,
            })
            .collect();
        match plan_repair(&clustering, &edges, &ops).expect("valid batch") {
            RepairOutcome::Degrade(DegradeReason::DegreeOverflow { parent }) => {
                assert_eq!(parent, 0)
            }
            other => panic!("expected degree degrade, got {other:?}"),
        }
    }

    #[test]
    fn cluster_overflow_degrades() {
        // threshold 2 → member bound 6; pile links onto one small cluster.
        let tree = shapes::path(12);
        let (_ctx, clustering, edges) = clustered(&tree, 2);
        let ops: Vec<TopologyOp> = (0..8)
            .map(|i| TopologyOp::Link {
                parent: 11,
                child: 100 + 10 * i, // distinct parents chain below the previous leaf
            })
            .collect();
        // Chain them so no single node's degree overflows: each leaf hangs below the
        // previous one, but all land in the same absorbing cluster.
        let mut chained = vec![TopologyOp::Link {
            parent: 11,
            child: 100,
        }];
        for i in 1..8u64 {
            chained.push(TopologyOp::Link {
                parent: 100 + (i - 1),
                child: 100 + i,
            });
        }
        let _ = ops;
        match plan_repair(&clustering, &edges, &chained).expect("valid batch") {
            RepairOutcome::Degrade(DegradeReason::ClusterOverflow { .. }) => {}
            other => panic!("expected cluster degrade, got {other:?}"),
        }
    }

    #[test]
    fn invalid_ops_rejected() {
        let tree = shapes::path(10);
        let (_ctx, clustering, edges) = clustered(&tree, 4);
        let rejected = |ops: &[TopologyOp]| plan_repair(&clustering, &edges, ops).unwrap_err();
        assert_eq!(
            rejected(&[TopologyOp::Cut { child: 0 }]),
            RepairError::CutRoot
        );
        assert_eq!(
            rejected(&[TopologyOp::Cut { child: 77 }]),
            RepairError::UnknownChild(77)
        );
        assert_eq!(
            rejected(&[TopologyOp::Link {
                parent: 99,
                child: 100
            }]),
            RepairError::UnknownParent(99)
        );
        assert_eq!(
            rejected(&[TopologyOp::Link {
                parent: 3,
                child: 5
            }]),
            RepairError::DuplicateChild(5)
        );
        assert_eq!(
            rejected(&[TopologyOp::Link {
                parent: 3,
                child: AUX_BASE + 1
            }]),
            RepairError::ReservedChildId(AUX_BASE + 1)
        );
        // Ops are validated against the evolving state: a link below a node cut
        // earlier in the same batch is unknown.
        assert_eq!(
            rejected(&[
                TopologyOp::Cut { child: 5 },
                TopologyOp::Link {
                    parent: 7,
                    child: 100
                }
            ]),
            RepairError::UnknownParent(7)
        );
    }
}
