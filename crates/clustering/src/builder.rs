//! Construction of the hierarchical clustering (Section 4.2 of the paper).
//!
//! The builder alternates two kinds of contraction steps on the *active* tree (whose
//! vertices are original nodes, colored indegree-0 cluster elements, and uncolored
//! indegree-1 cluster elements):
//!
//! 1. **Indegree-zero step** (Section 4.2.2): `CountSubtreeSizes` classifies uncolored
//!    elements as *heavy* (more than `n^{δ/2}` uncolored elements in their subtree) or
//!    *light*; every light element whose parent is heavy has its entire remaining
//!    subtree — including attached colored elements — contracted into an indegree-0
//!    cluster, which stays in the tree as a *colored* leaf.
//! 2. **Indegree-one step** (Section 4.2.3): maximal paths of degree-2 elements in the
//!    uncolored subgraph are located with `CountDistances`, split into fragments of at
//!    most `n^{δ/2}` elements, and every fragment together with its attached colored
//!    elements becomes an indegree-1 (caterpillar) cluster, contracted into a single
//!    uncolored degree-2 element.
//!
//! When at most `n^{δ/2}` uncolored elements remain, everything left is gathered into
//! the single top cluster. Lemma 4 of the paper bounds the number of iterations by a
//! constant (≈ `2/δ`); the builder enforces a generous safety cap and reports an error
//! if it is ever exceeded.
//!
//! ## Batched per-level passes
//!
//! Each contraction level used to spend a long tail of separate primitives on probing
//! and bookkeeping around the two subroutine calls. Those are now absorbed into a
//! constant number of fused passes per level:
//!
//! * both size probes (own size, parent's size) and both path-flag probes (parent's
//!   flag, child's flag) are single [`MpcContext::join_lookup2`] calls instead of a
//!   `sort_table` plus two probe rounds each;
//! * the indegree-1 adjacency carries each node's parent, outgoing edge, and per-child
//!   attachment edge, so degree-2 flags and fragment assembly need no further joins —
//!   the path payload rides through [`path_distances`] and the incoming edge of every
//!   fragment cluster is read off the bottom member's `child_edge` locally;
//! * absorption, colored-children follow-up, and parent re-targeting collapse into one
//!   two-column probe of the assignment table per level ([`absorb_and_retarget`]),
//!   replacing the former three-join sequence.

use crate::clustering::Clustering;
use crate::element::{make_cluster_id, Element, ElementId, ElementKind, UNABSORBED, VIRTUAL_NODE};
use crate::subroutines::{count_subtree_sizes, path_distances, PathNode, PathPosition};
use mpc_engine::{DistVec, MpcContext, Words};
use std::fmt;
use tree_repr::{DirectedEdge, NodeId};

/// Error produced when the clustering cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterError(pub String);

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clustering construction failed: {}", self.0)
    }
}

impl std::error::Error for ClusterError {}

/// One element of the *active* (partially contracted) tree during construction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Active {
    id: ElementId,
    kind: ElementKind,
    colored: bool,
    parent: ElementId,
    out_edge: DirectedEdge,
    in_edge: Option<DirectedEdge>,
    formed_at: u32,
}

/// Per-fragment product of the indegree-1 contraction pass: the membership
/// assignments and the new cluster's active element (complete with its incoming edge,
/// resolved locally from the bottom member's child edge).
type FragProduct = (Vec<(ElementId, ElementId)>, Active);

impl Words for Active {
    fn words(&self) -> usize {
        12
    }
}

/// Enriched uncolored-subgraph adjacency record for the indegree-one step: the node's
/// parent and outgoing edge plus its uncolored children, each tagged with the
/// original-tree edge through which it attaches.
#[derive(Debug, Clone)]
struct AdjRec {
    id: ElementId,
    parent: ElementId,
    out_edge: DirectedEdge,
    children: Vec<(ElementId, DirectedEdge)>,
}

impl Words for AdjRec {
    fn words(&self) -> usize {
        4 + 3 * self.children.len()
    }
}

/// Degree-2 path flag for one uncolored element, carrying everything the path
/// subroutine's payload needs: the unique child and its attachment edge, the parent,
/// and the element's own outgoing edge.
#[derive(Debug, Clone, Copy)]
struct FlagRec {
    id: ElementId,
    is_path: bool,
    child: ElementId,
    child_edge: DirectedEdge,
    parent: ElementId,
    out_edge: DirectedEdge,
}

impl Words for FlagRec {
    fn words(&self) -> usize {
        8
    }
}

/// Build the hierarchical clustering of a rooted tree given as a distributed list of
/// child→parent edges.
///
/// `threshold` overrides the cluster-size / degree threshold `n^{δ/2}` (useful for
/// tests and ablation experiments); by default it is taken from the MPC configuration.
/// The input tree must have maximum number of children at most the threshold — apply
/// [`crate::degree::reduce_degrees`] first otherwise.
pub fn build_clustering(
    ctx: &mut MpcContext,
    edges: &DistVec<DirectedEdge>,
    root: NodeId,
    num_nodes: usize,
    threshold: Option<usize>,
) -> Result<Clustering, ClusterError> {
    let threshold = threshold
        .unwrap_or_else(|| ctx.config().n_half_delta())
        .max(2);
    if num_nodes == 0 {
        return Err(ClusterError("empty tree".to_string()));
    }

    // Degree precondition (Section 4.2 assumes max degree n^{δ/2}).
    let by_parent = ctx.gather_groups(edges.clone(), |e| e.parent);
    let max_children = ctx.all_reduce(
        &by_parent,
        0u64,
        |acc, (_, group)| acc.max(group.len() as u64),
        |a, b| a.max(b),
    );
    if max_children > threshold as u64 {
        return Err(ClusterError(format!(
            "maximum number of children {max_children} exceeds the threshold {threshold}; \
             apply degree reduction first (Section 4.4)"
        )));
    }

    // Initial active elements: every original node, with the root pointing at the
    // virtual node through the virtual edge (Section 1.5).
    let mut initial: Vec<Active> = edges
        .iter()
        .map(|e| Active {
            id: e.child,
            kind: ElementKind::Node,
            colored: false,
            parent: e.parent,
            out_edge: *e,
            in_edge: None,
            formed_at: 0,
        })
        .collect();
    initial.push(Active {
        id: root,
        kind: ElementKind::Node,
        colored: false,
        parent: VIRTUAL_NODE,
        out_edge: DirectedEdge::new(root, VIRTUAL_NODE),
        in_edge: None,
        formed_at: 0,
    });
    if initial.len() != num_nodes {
        return Err(ClusterError(format!(
            "edge list has {} nodes but num_nodes = {num_nodes}",
            initial.len()
        )));
    }
    let mut actives: DistVec<Active> = ctx.from_vec(initial);
    ctx.check_memory(&actives, "clustering/init");

    let mut finished: Vec<Element> = Vec::new();
    let mut layer: u32 = 0;
    let delta = ctx.config().delta;
    let max_iterations = ((2.0 / delta).ceil() as u32) * 4 + 16;
    let mut top_cluster = 0;

    for iteration in 0..=max_iterations {
        if iteration == max_iterations {
            return Err(ClusterError(format!(
                "no convergence after {max_iterations} iterations (Lemma 4 predicts O(1))"
            )));
        }
        let uncolored_count = ctx.all_reduce(
            &actives,
            0u64,
            |acc, a| acc + u64::from(!a.colored),
            |a, b| a + b,
        );

        // ----- termination: everything left fits into one top cluster -----------------
        if uncolored_count <= threshold as u64 {
            layer += 1;
            top_cluster = make_cluster_id(layer, root);
            let grouped = ctx.gather_groups(actives, |_| 0u64);
            for (_, members) in grouped.iter() {
                for a in members {
                    finished.push(Element {
                        id: a.id,
                        kind: a.kind,
                        formed_at: a.formed_at,
                        absorbed_into: top_cluster,
                        absorbed_at: layer,
                        out_edge: a.out_edge,
                        in_edge: a.in_edge,
                    });
                }
            }
            finished.push(Element {
                id: top_cluster,
                kind: ElementKind::TopCluster,
                formed_at: layer,
                absorbed_into: VIRTUAL_NODE,
                absorbed_at: UNABSORBED,
                out_edge: DirectedEdge::new(root, VIRTUAL_NODE),
                in_edge: None,
            });
            break;
        }

        // ----- indegree-zero step -----------------------------------------------------
        layer += 1;
        let indeg0_layer = layer;
        let sizes = ctx.phase("cluster-sizes", |ctx| {
            let adjacency = uncolored_children(ctx, &actives);
            count_subtree_sizes(ctx, adjacency, threshold)
        });
        // One fused two-column probe answers both size questions (own size, parent's
        // size) in a single join round.
        let uncolored = actives.clone().filter_local(|a| !a.colored);
        let probed = ctx.join_lookup2(uncolored, |a| a.id, |a| a.parent, &sizes, |s| s.id);
        let selected = probed.filter_local(|(a, own, parent)| {
            let light = own.as_ref().map(|o| !o.heavy).unwrap_or(false);
            let parent_heavy = parent.as_ref().map(|p| p.heavy).unwrap_or(false);
            light && parent_heavy && a.parent != VIRTUAL_NODE
        });
        // Membership assignments (member element → absorbing cluster) and the new
        // colored cluster elements, one per selected subtree root.
        let assignments: DistVec<(ElementId, ElementId)> =
            selected.clone().flat_map_local(|(a, own, _)| {
                let cid = make_cluster_id(indeg0_layer, a.id);
                own.map(|o| o.descendants.iter().map(|&d| (d, cid)).collect::<Vec<_>>())
                    .unwrap_or_default()
            });
        let new_clusters: DistVec<Active> = selected.map_local(|(a, _, _)| Active {
            id: make_cluster_id(indeg0_layer, a.id),
            kind: ElementKind::ClusterIndeg0,
            colored: true,
            parent: a.parent,
            out_edge: a.out_edge,
            in_edge: None,
            formed_at: indeg0_layer,
        });
        // No re-targeting in this step: absorbed subtrees consist of light elements
        // only, so no surviving element's parent pointer dangles.
        actives = absorb_and_retarget(
            ctx,
            actives,
            &assignments,
            false,
            indeg0_layer,
            &mut finished,
        )
        .concat_local(new_clusters);
        ctx.check_memory(&actives, "clustering/after-indeg0");

        // ----- indegree-one step ------------------------------------------------------
        layer += 1;
        let indeg1_layer = layer;
        let adjacency = uncolored_adjacency(ctx, &actives);
        // Degree-2 flags: exactly one uncolored child and a real (non-virtual) parent.
        // The enriched adjacency already carries parent and edges, so this is local.
        let flags: DistVec<FlagRec> = adjacency.map_local(|r| FlagRec {
            id: r.id,
            is_path: r.children.len() == 1 && r.parent != VIRTUAL_NODE,
            child: r.children.first().map(|c| c.0).unwrap_or(VIRTUAL_NODE),
            child_edge: r
                .children
                .first()
                .map(|c| c.1)
                .unwrap_or(DirectedEdge::new(r.id, VIRTUAL_NODE)),
            parent: r.parent,
            out_edge: r.out_edge,
        });
        // Both neighbor flags (parent's, child's) in one fused two-column probe.
        let path_candidates = flags.clone().filter_local(|f| f.is_path);
        let probed = ctx.join_lookup2(path_candidates, |f| f.parent, |f| f.child, &flags, |x| x.id);
        let path_nodes: DistVec<PathNode> = probed.map_local(|(f, up, down)| PathNode {
            id: f.id,
            up: f.parent,
            up_is_path: up.as_ref().map(|u| u.is_path).unwrap_or(false),
            down: f.child,
            down_is_path: down.as_ref().map(|d| d.is_path).unwrap_or(false),
            out_edge: f.out_edge,
            child_edge: f.child_edge,
        });
        let positions = ctx.phase("cluster-paths", |ctx| path_distances(ctx, path_nodes));

        // Fragments of at most `threshold` consecutive path nodes; the bottom anchor of
        // the path uniquely identifies the path, the quotient of the downward distance
        // identifies the fragment. The payload carried through `path_distances` makes
        // the whole assembly — assignments, cluster element, incoming edge — local to
        // the fragment's machine.
        let frag_key =
            move |p: &PathPosition| (p.bottom_anchor, (p.dist_down - 1) / threshold as u64);
        let groups = ctx.gather_groups(positions, move |p| frag_key(p));
        let frag_products: DistVec<FragProduct> = groups.flat_map_local(|(_, members)| {
            let mut members = members;
            if members.is_empty() {
                return Vec::new();
            }
            members.sort_by_key(|p| p.dist_down);
            let bottom = members[0];
            let top = *members.last().expect("non-empty fragment");
            let cid = make_cluster_id(indeg1_layer, top.id);
            let assignments: Vec<(ElementId, ElementId)> =
                members.iter().map(|p| (p.id, cid)).collect();
            // The unique uncolored child of the fragment's bottom member contributes
            // its outgoing edge as the fragment's incoming edge.
            let cluster = Active {
                id: cid,
                kind: ElementKind::ClusterIndeg1,
                colored: false,
                parent: top.up,
                out_edge: top.out_edge,
                in_edge: Some(bottom.child_edge),
                formed_at: indeg1_layer,
            };
            vec![(assignments, cluster)]
        });
        let assignments: DistVec<(ElementId, ElementId)> =
            frag_products.clone().flat_map_local(|(assign, _)| assign);
        let new_clusters: DistVec<Active> = frag_products.map_local(|(_, cluster)| *cluster);

        // Absorption and parent re-targeting over old and new elements in one pass
        // (the new clusters are never absorbed — their ids are fresh — but their
        // parents may point into an absorbed fragment and need re-targeting).
        let merged = actives.concat_local(new_clusters);
        actives = absorb_and_retarget(ctx, merged, &assignments, true, indeg1_layer, &mut finished);
        ctx.check_memory(&actives, "clustering/after-indeg1");
    }

    let elements = ctx.from_vec(finished);
    let elements = ctx.rebalance(elements);
    ctx.check_memory(&elements, "clustering/elements");
    Ok(Clustering {
        num_nodes,
        root,
        num_layers: layer,
        threshold,
        elements,
        top_cluster,
    })
}

/// Uncolored-subgraph adjacency: for every uncolored element, the list of its uncolored
/// children (possibly empty). One `gather_groups` (`O(1)` rounds).
fn uncolored_children(
    ctx: &mut MpcContext,
    actives: &DistVec<Active>,
) -> DistVec<(ElementId, Vec<ElementId>)> {
    let child_pairs: DistVec<(ElementId, ElementId)> = actives.clone().flat_map_local(|a| {
        if !a.colored && a.parent != VIRTUAL_NODE {
            vec![(a.parent, a.id)]
        } else {
            Vec::new()
        }
    });
    let self_pairs: DistVec<(ElementId, ElementId)> = actives.clone().flat_map_local(|a| {
        if !a.colored {
            vec![(a.id, VIRTUAL_NODE)]
        } else {
            Vec::new()
        }
    });
    let grouped = ctx.gather_groups(child_pairs.concat_local(self_pairs), |p| p.0);
    grouped.map_local(|(id, pairs)| {
        let children: Vec<ElementId> = pairs
            .iter()
            .map(|(_, c)| *c)
            .filter(|&c| c != VIRTUAL_NODE)
            .collect();
        (*id, children)
    })
}

/// Enriched adjacency for the indegree-one step: one `gather_groups` (`O(1)` rounds)
/// over child and self announcement pairs. Child pairs ship `(child id, child's
/// outgoing edge)` to the parent; the self pair carries the node's own parent pointer
/// and outgoing edge, so every downstream consumer works without further joins.
fn uncolored_adjacency(ctx: &mut MpcContext, actives: &DistVec<Active>) -> DistVec<AdjRec> {
    type Pair = (ElementId, ElementId, ElementId, DirectedEdge);
    let child_pairs: DistVec<Pair> = actives.clone().flat_map_local(|a| {
        if !a.colored && a.parent != VIRTUAL_NODE {
            vec![(a.parent, a.id, VIRTUAL_NODE, a.out_edge)]
        } else {
            Vec::new()
        }
    });
    let self_pairs: DistVec<Pair> = actives.clone().flat_map_local(|a| {
        if !a.colored {
            vec![(a.id, VIRTUAL_NODE, a.parent, a.out_edge)]
        } else {
            Vec::new()
        }
    });
    let grouped = ctx.gather_groups(child_pairs.concat_local(self_pairs), |p| p.0);
    grouped.map_local(|(id, pairs)| {
        // Every uncolored element emits a self pair, so the parent and out-edge
        // fields are always overwritten below (colored elements are leaves, hence
        // child pairs never target a colored parent).
        let mut rec = AdjRec {
            id: *id,
            parent: VIRTUAL_NODE,
            out_edge: DirectedEdge::new(*id, VIRTUAL_NODE),
            children: Vec::new(),
        };
        for (_, child, parent, edge) in pairs {
            if *child == VIRTUAL_NODE {
                rec.parent = *parent;
                rec.out_edge = *edge;
            } else {
                rec.children.push((*child, *edge));
            }
        }
        rec
    })
}

/// Remove absorbed elements from the active set in one fused two-column probe of the
/// assignment table: the first column resolves each element's own absorption, the
/// second its parent's. A colored element whose parent was absorbed follows it into
/// the same cluster (colored elements always ride along); when `retarget` is set, a
/// surviving element whose parent was absorbed re-points at the absorbing cluster.
/// Absorbed elements are recorded in `finished`; the iteration over the probe results
/// models the machine-local write-out of finalized elements.
fn absorb_and_retarget(
    ctx: &mut MpcContext,
    actives: DistVec<Active>,
    assignments: &DistVec<(ElementId, ElementId)>,
    retarget: bool,
    layer: u32,
    finished: &mut Vec<Element>,
) -> DistVec<Active> {
    let tagged = ctx.join_lookup2(actives, |a| a.id, |a| a.parent, assignments, |x| x.0);
    for (a, own, parent_hit) in tagged.iter() {
        let absorbed_into = match (own, parent_hit) {
            (Some((_, cid)), _) => Some(*cid),
            (None, Some((_, cid))) if a.colored => Some(*cid),
            _ => None,
        };
        if let Some(cid) = absorbed_into {
            finished.push(Element {
                id: a.id,
                kind: a.kind,
                formed_at: a.formed_at,
                absorbed_into: cid,
                absorbed_at: layer,
                out_edge: a.out_edge,
                in_edge: a.in_edge,
            });
        }
    }
    tagged
        .filter_local(|(a, own, parent_hit)| own.is_none() && !(a.colored && parent_hit.is_some()))
        .map_local(|(a, _, parent_hit)| match parent_hit {
            Some((_, cid)) if retarget => Active { parent: *cid, ..*a },
            _ => *a,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::shapes;
    use tree_repr::Tree;

    fn cluster_tree(tree: &Tree, delta: f64, threshold: Option<usize>) -> (Clustering, u64) {
        let n = tree.len().max(16);
        let mut ctx = MpcContext::new(MpcConfig::new(n, delta));
        let edges = ctx.from_vec(tree.edges());
        let clustering =
            build_clustering(&mut ctx, &edges, tree.root() as u64, tree.len(), threshold)
                .expect("clustering succeeds");
        (clustering, ctx.metrics().rounds)
    }

    fn assert_valid(tree: &Tree, clustering: &Clustering) {
        let violations = clustering.validate(&tree.edges());
        assert!(
            violations.is_empty(),
            "clustering violations on a {}-node tree: {:?}",
            tree.len(),
            &violations[..violations.len().min(5)]
        );
    }

    #[test]
    fn clusters_a_path() {
        let tree = shapes::path(200);
        let (clustering, _) = cluster_tree(&tree, 0.5, Some(6));
        assert_valid(&tree, &clustering);
        assert!(clustering.num_clusters() > 1);
        assert!(clustering.max_cluster_size() <= 6 * 7);
    }

    #[test]
    fn clusters_a_star_within_threshold() {
        // Degree must stay within the threshold, so use a star of 6 leaves.
        let tree = shapes::star(7);
        let (clustering, _) = cluster_tree(&tree, 0.5, Some(8));
        assert_valid(&tree, &clustering);
    }

    #[test]
    fn rejects_high_degree_input() {
        let tree = shapes::star(100);
        let mut ctx = MpcContext::new(MpcConfig::new(128, 0.5));
        let edges = ctx.from_vec(tree.edges());
        let err = build_clustering(&mut ctx, &edges, 0, tree.len(), Some(8));
        assert!(err.is_err());
        assert!(err.unwrap_err().0.contains("degree"));
    }

    #[test]
    fn clusters_balanced_binary() {
        let tree = shapes::balanced_kary(511, 2);
        let (clustering, _) = cluster_tree(&tree, 0.5, None);
        assert_valid(&tree, &clustering);
    }

    #[test]
    fn clusters_caterpillar() {
        let tree = shapes::caterpillar(80, 3);
        let (clustering, _) = cluster_tree(&tree, 0.5, Some(5));
        assert_valid(&tree, &clustering);
    }

    #[test]
    fn clusters_random_trees() {
        for seed in 0..5 {
            let tree = shapes::random_recursive(300, seed);
            if tree.max_degree() > 8 {
                continue;
            }
            let (clustering, _) = cluster_tree(&tree, 0.5, Some(8));
            assert_valid(&tree, &clustering);
        }
    }

    #[test]
    fn single_node_tree() {
        let tree = Tree::singleton();
        let (clustering, _) = cluster_tree(&tree, 0.5, None);
        assert_valid(&tree, &clustering);
        assert_eq!(clustering.num_clusters(), 1);
    }

    #[test]
    fn layer_count_is_small() {
        // Lemma 4: O(1) layers. With threshold t the layer count should stay well below
        // a small constant multiple of log_t(n).
        for shape in [
            shapes::path(400),
            shapes::balanced_kary(400, 2),
            shapes::spider(4, 100),
        ] {
            let (clustering, _) = cluster_tree(&shape, 0.5, Some(5));
            assert!(
                clustering.num_layers <= 20,
                "too many layers: {}",
                clustering.num_layers
            );
            assert_valid(&shape, &clustering);
        }
    }

    #[test]
    fn rounds_grow_with_diameter_not_size() {
        // Same node count, very different diameters: the deep tree must use more rounds.
        let deep = shapes::path(512);
        let shallow = shapes::balanced_kary(512, 4);
        let (_, rounds_deep) = cluster_tree(&deep, 0.5, Some(11));
        let (_, rounds_shallow) = cluster_tree(&shallow, 0.5, Some(11));
        assert!(
            rounds_shallow < rounds_deep,
            "shallow {rounds_shallow} vs deep {rounds_deep}"
        );
    }

    #[test]
    fn fused_and_legacy_subroutines_build_identical_clusterings() {
        // The convergence-skip flag changes only the metrics, never the clustering.
        for (tree, threshold) in [
            (shapes::path(300), Some(6)),
            (shapes::balanced_kary(255, 2), None),
            (shapes::caterpillar(70, 3), Some(5)),
            (shapes::spider(4, 60), Some(8)),
            (shapes::random_recursive(250, 7), Some(9)),
        ] {
            let n = tree.len().max(16);
            let mut fused_ctx = MpcContext::new(MpcConfig::new(n, 0.5));
            let edges = fused_ctx.from_vec(tree.edges());
            let fused = build_clustering(
                &mut fused_ctx,
                &edges,
                tree.root() as u64,
                tree.len(),
                threshold,
            )
            .expect("fused clustering succeeds");

            let mut legacy_ctx =
                MpcContext::new(MpcConfig::new(n, 0.5).with_convergence_skip(false));
            let edges = legacy_ctx.from_vec(tree.edges());
            let legacy = build_clustering(
                &mut legacy_ctx,
                &edges,
                tree.root() as u64,
                tree.len(),
                threshold,
            )
            .expect("legacy clustering succeeds");

            assert_eq!(
                fused.elements.clone().into_vec(),
                legacy.elements.clone().into_vec(),
                "{}-node tree",
                tree.len()
            );
            assert_eq!(fused.num_layers, legacy.num_layers);
            assert_eq!(fused.top_cluster, legacy.top_cluster);
            assert!(
                fused_ctx.metrics().rounds <= legacy_ctx.metrics().rounds,
                "fused {} vs legacy {} rounds on a {}-node tree",
                fused_ctx.metrics().rounds,
                legacy_ctx.metrics().rounds,
                tree.len()
            );
        }
    }
}
