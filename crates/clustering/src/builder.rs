//! Construction of the hierarchical clustering (Section 4.2 of the paper).
//!
//! The builder alternates two kinds of contraction steps on the *active* tree (whose
//! vertices are original nodes, colored indegree-0 cluster elements, and uncolored
//! indegree-1 cluster elements):
//!
//! 1. **Indegree-zero step** (Section 4.2.2): `CountSubtreeSizes` classifies uncolored
//!    elements as *heavy* (more than `n^{δ/2}` uncolored elements in their subtree) or
//!    *light*; every light element whose parent is heavy has its entire remaining
//!    subtree — including attached colored elements — contracted into an indegree-0
//!    cluster, which stays in the tree as a *colored* leaf.
//! 2. **Indegree-one step** (Section 4.2.3): maximal paths of degree-2 elements in the
//!    uncolored subgraph are located with `CountDistances`, split into fragments of at
//!    most `n^{δ/2}` elements, and every fragment together with its attached colored
//!    elements becomes an indegree-1 (caterpillar) cluster, contracted into a single
//!    uncolored degree-2 element.
//!
//! When at most `n^{δ/2}` uncolored elements remain, everything left is gathered into
//! the single top cluster. Lemma 4 of the paper bounds the number of iterations by a
//! constant (≈ `2/δ`); the builder enforces a generous safety cap and reports an error
//! if it is ever exceeded.

use crate::clustering::Clustering;
use crate::element::{make_cluster_id, Element, ElementId, ElementKind, VIRTUAL_NODE};
use crate::subroutines::{count_subtree_sizes, path_distances, PathNode, PathPosition};
use mpc_engine::{DistVec, MpcContext, SortedTable, Words};
use std::fmt;
use tree_repr::{DirectedEdge, NodeId};

/// Error produced when the clustering cannot be built.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterError(pub String);

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "clustering construction failed: {}", self.0)
    }
}

impl std::error::Error for ClusterError {}

/// One element of the *active* (partially contracted) tree during construction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Active {
    id: ElementId,
    kind: ElementKind,
    colored: bool,
    parent: ElementId,
    out_edge: DirectedEdge,
    in_edge: Option<DirectedEdge>,
    formed_at: u32,
}

/// Per-fragment product of the indegree-1 contraction pass: the membership
/// assignments, the new cluster's active element, and the lookup request for the
/// cluster's incoming edge.
type FragProduct = (Vec<(ElementId, ElementId)>, Active, (ElementId, ElementId));

impl Words for Active {
    fn words(&self) -> usize {
        12
    }
}

/// Build the hierarchical clustering of a rooted tree given as a distributed list of
/// child→parent edges.
///
/// `threshold` overrides the cluster-size / degree threshold `n^{δ/2}` (useful for
/// tests and ablation experiments); by default it is taken from the MPC configuration.
/// The input tree must have maximum number of children at most the threshold — apply
/// [`crate::degree::reduce_degrees`] first otherwise.
pub fn build_clustering(
    ctx: &mut MpcContext,
    edges: &DistVec<DirectedEdge>,
    root: NodeId,
    num_nodes: usize,
    threshold: Option<usize>,
) -> Result<Clustering, ClusterError> {
    let threshold = threshold
        .unwrap_or_else(|| ctx.config().n_half_delta())
        .max(2);
    if num_nodes == 0 {
        return Err(ClusterError("empty tree".to_string()));
    }

    // Degree precondition (Section 4.2 assumes max degree n^{δ/2}).
    let by_parent = ctx.gather_groups(edges.clone(), |e| e.parent);
    let max_children = ctx.all_reduce(
        &by_parent,
        0u64,
        |acc, (_, group)| acc.max(group.len() as u64),
        |a, b| a.max(b),
    );
    if max_children > threshold as u64 {
        return Err(ClusterError(format!(
            "maximum number of children {max_children} exceeds the threshold {threshold}; \
             apply degree reduction first (Section 4.4)"
        )));
    }

    // Initial active elements: every original node, with the root pointing at the
    // virtual node through the virtual edge (Section 1.5).
    let mut initial: Vec<Active> = edges
        .iter()
        .map(|e| Active {
            id: e.child,
            kind: ElementKind::Node,
            colored: false,
            parent: e.parent,
            out_edge: *e,
            in_edge: None,
            formed_at: 0,
        })
        .collect();
    initial.push(Active {
        id: root,
        kind: ElementKind::Node,
        colored: false,
        parent: VIRTUAL_NODE,
        out_edge: DirectedEdge::new(root, VIRTUAL_NODE),
        in_edge: None,
        formed_at: 0,
    });
    if initial.len() != num_nodes {
        return Err(ClusterError(format!(
            "edge list has {} nodes but num_nodes = {num_nodes}",
            initial.len()
        )));
    }
    let mut actives: DistVec<Active> = ctx.from_vec(initial);
    ctx.check_memory(&actives, "clustering/init");

    let mut finished: Vec<Element> = Vec::new();
    let mut layer: u32 = 0;
    let delta = ctx.config().delta;
    let max_iterations = ((2.0 / delta).ceil() as u32) * 4 + 16;
    let mut top_cluster = 0;

    for iteration in 0..=max_iterations {
        if iteration == max_iterations {
            return Err(ClusterError(format!(
                "no convergence after {max_iterations} iterations (Lemma 4 predicts O(1))"
            )));
        }
        let uncolored_count = ctx.all_reduce(
            &actives,
            0u64,
            |acc, a| acc + u64::from(!a.colored),
            |a, b| a + b,
        );

        // ----- termination: everything left fits into one top cluster -----------------
        if uncolored_count <= threshold as u64 {
            layer += 1;
            top_cluster = make_cluster_id(layer, root);
            let grouped = ctx.gather_groups(actives, |_| 0u64);
            for (_, members) in grouped.iter() {
                for a in members {
                    finished.push(Element {
                        id: a.id,
                        kind: a.kind,
                        formed_at: a.formed_at,
                        absorbed_into: top_cluster,
                        absorbed_at: layer,
                        out_edge: a.out_edge,
                        in_edge: a.in_edge,
                    });
                }
            }
            finished.push(Element {
                id: top_cluster,
                kind: ElementKind::TopCluster,
                formed_at: layer,
                absorbed_into: VIRTUAL_NODE,
                absorbed_at: u32::MAX,
                out_edge: DirectedEdge::new(root, VIRTUAL_NODE),
                in_edge: None,
            });
            break;
        }

        // ----- indegree-zero step -----------------------------------------------------
        layer += 1;
        let indeg0_layer = layer;
        let sizes = ctx.phase("cluster-sizes", |ctx| {
            let adjacency = uncolored_children(ctx, &actives);
            count_subtree_sizes(ctx, adjacency, threshold)
        });
        // The size table is probed twice (own size, parent's size): sort it once.
        let sizes_sorted = ctx.sort_table(&sizes, |s| s.id);
        let uncolored = actives.clone().filter_local(|a| !a.colored);
        let with_self = ctx.join_lookup_sorted(uncolored, |a| a.id, &sizes, &sizes_sorted);
        let with_parent =
            ctx.join_lookup_sorted(with_self, |(a, _)| a.parent, &sizes, &sizes_sorted);
        let selected = with_parent.filter_local(|((a, own), parent)| {
            let light = own.as_ref().map(|o| !o.heavy).unwrap_or(false);
            let parent_heavy = parent.as_ref().map(|p| p.heavy).unwrap_or(false);
            light && parent_heavy && a.parent != VIRTUAL_NODE
        });
        // Membership assignments (member element → absorbing cluster) and the new
        // colored cluster elements, one per selected subtree root.
        let assignments: DistVec<(ElementId, ElementId)> =
            selected.clone().flat_map_local(|((a, own), _)| {
                let cid = make_cluster_id(indeg0_layer, a.id);
                own.as_ref()
                    .map(|o| o.descendants.iter().map(|&d| (d, cid)).collect::<Vec<_>>())
                    .unwrap_or_default()
            });
        let new_clusters: DistVec<Active> = selected.map_local(|((a, _), _)| Active {
            id: make_cluster_id(indeg0_layer, a.id),
            kind: ElementKind::ClusterIndeg0,
            colored: true,
            parent: a.parent,
            out_edge: a.out_edge,
            in_edge: None,
            formed_at: indeg0_layer,
        });
        let assignments = absorb_colored_children(ctx, &actives, assignments);
        actives = apply_absorption(
            ctx,
            actives,
            &assignments,
            None,
            indeg0_layer,
            &mut finished,
        )
        .concat_local(new_clusters);
        ctx.check_memory(&actives, "clustering/after-indeg0");

        // ----- indegree-one step ------------------------------------------------------
        layer += 1;
        let indeg1_layer = layer;
        let adjacency = uncolored_children(ctx, &actives);
        // Degree-2 flags: exactly one uncolored child and a real (non-virtual) parent.
        let uncolored = actives.clone().filter_local(|a| !a.colored);
        let with_children = ctx.join_lookup(uncolored, |a| a.id, &adjacency, |x| x.0);
        let flags: DistVec<(ElementId, bool, ElementId, ElementId)> =
            with_children.map_local(|(a, ch)| {
                let children = ch.as_ref().map(|c| c.1.clone()).unwrap_or_default();
                let is_path = children.len() == 1 && a.parent != VIRTUAL_NODE;
                (
                    a.id,
                    is_path,
                    children.first().copied().unwrap_or(VIRTUAL_NODE),
                    a.parent,
                )
            });
        // The flag table is probed twice (parent's and child's path flag): sort once.
        let flags_sorted = ctx.sort_table(&flags, |x| x.0);
        let path_candidates = flags.clone().filter_local(|f| f.1);
        let with_up = ctx.join_lookup_sorted(path_candidates, |f| f.3, &flags, &flags_sorted);
        let with_down = ctx.join_lookup_sorted(with_up, |(f, _)| f.2, &flags, &flags_sorted);
        let path_nodes: DistVec<PathNode> = with_down.map_local(|((f, up), down)| PathNode {
            id: f.0,
            up: f.3,
            up_is_path: up.as_ref().map(|u| u.1).unwrap_or(false),
            down: f.2,
            down_is_path: down.as_ref().map(|d| d.1).unwrap_or(false),
        });
        let positions = ctx.phase("cluster-paths", |ctx| path_distances(ctx, path_nodes));

        // Fragments of at most `threshold` consecutive path nodes; the bottom anchor of
        // the path uniquely identifies the path, the quotient of the downward distance
        // identifies the fragment.
        let pos_with_active = ctx.join_lookup(positions, |p| p.id, &actives, |a| a.id);
        let frag_key =
            move |p: &PathPosition| (p.bottom_anchor, (p.dist_down - 1) / threshold as u64);
        let groups = ctx.gather_groups(pos_with_active, move |(p, _)| frag_key(p));
        // For every fragment: membership assignments, the new (uncolored, indegree-1)
        // cluster element, and a lookup request for its incoming edge.
        let frag_products: DistVec<FragProduct> = groups.flat_map_local(|(_, members)| {
            let mut members: Vec<(PathPosition, Active)> = members
                .into_iter()
                .filter_map(|(p, a)| a.map(|a| (p, a)))
                .collect();
            if members.is_empty() {
                return Vec::new();
            }
            members.sort_by_key(|(p, _)| p.dist_down);
            let (_, bottom_active) = members[0];
            let (_, top_active) = *members.last().expect("non-empty fragment");
            let cid = make_cluster_id(indeg1_layer, top_active.id);
            let assignments: Vec<(ElementId, ElementId)> =
                members.iter().map(|(_, a)| (a.id, cid)).collect();
            let cluster = Active {
                id: cid,
                kind: ElementKind::ClusterIndeg1,
                colored: false,
                parent: top_active.parent,
                out_edge: top_active.out_edge,
                in_edge: None,
                formed_at: indeg1_layer,
            };
            vec![(assignments, cluster, (cid, bottom_active.id))]
        });
        let assignments: DistVec<(ElementId, ElementId)> = frag_products
            .clone()
            .flat_map_local(|(assign, _, _)| assign);
        let new_clusters_raw: DistVec<Active> =
            frag_products.clone().map_local(|(_, cluster, _)| *cluster);
        let in_edge_requests: DistVec<(ElementId, ElementId)> =
            frag_products.map_local(|(_, _, req)| *req);

        // Resolve incoming edges: the unique uncolored child of the fragment's bottom
        // member contributes its outgoing edge as the fragment's incoming edge.
        let child_table: DistVec<(ElementId, DirectedEdge)> = actives
            .clone()
            .filter_local(|a| !a.colored)
            .map_local(|a| (a.parent, a.out_edge));
        let resolved = ctx.join_lookup(in_edge_requests, |r| r.1, &child_table, |t| t.0);
        let in_edges: DistVec<(ElementId, Option<DirectedEdge>)> =
            resolved.map_local(|((cid, _), found)| (*cid, found.as_ref().map(|f| f.1)));
        let clusters_with_in = ctx.join_lookup(new_clusters_raw, |c| c.id, &in_edges, |x| x.0);
        let new_clusters: DistVec<Active> = clusters_with_in.map_local(|(c, found)| Active {
            in_edge: found.as_ref().and_then(|f| f.1),
            ..*c
        });

        let assignments = absorb_colored_children(ctx, &actives, assignments);
        // The final assignment table is probed twice (absorption + parent re-target):
        // sort it once and reuse the handle.
        let assignments_sorted = ctx.sort_table(&assignments, |x| x.0);
        let remaining = apply_absorption(
            ctx,
            actives,
            &assignments,
            Some(&assignments_sorted),
            indeg1_layer,
            &mut finished,
        );
        let merged = remaining.concat_local(new_clusters);
        // Re-target parent pointers of everything whose parent was just absorbed.
        let retargeted =
            ctx.join_lookup_sorted(merged, |a| a.parent, &assignments, &assignments_sorted);
        actives = retargeted.map_local(|(a, found)| match found {
            Some((_, cid)) => Active { parent: *cid, ..*a },
            None => *a,
        });
        ctx.check_memory(&actives, "clustering/after-indeg1");
    }

    let elements = ctx.from_vec(finished);
    let elements = ctx.rebalance(elements);
    ctx.check_memory(&elements, "clustering/elements");
    Ok(Clustering {
        num_nodes,
        root,
        num_layers: layer,
        threshold,
        elements,
        top_cluster,
    })
}

/// Uncolored-subgraph adjacency: for every uncolored element, the list of its uncolored
/// children (possibly empty). One `gather_groups` (`O(1)` rounds).
fn uncolored_children(
    ctx: &mut MpcContext,
    actives: &DistVec<Active>,
) -> DistVec<(ElementId, Vec<ElementId>)> {
    let child_pairs: DistVec<(ElementId, ElementId)> = actives.clone().flat_map_local(|a| {
        if !a.colored && a.parent != VIRTUAL_NODE {
            vec![(a.parent, a.id)]
        } else {
            Vec::new()
        }
    });
    let self_pairs: DistVec<(ElementId, ElementId)> = actives.clone().flat_map_local(|a| {
        if !a.colored {
            vec![(a.id, VIRTUAL_NODE)]
        } else {
            Vec::new()
        }
    });
    let grouped = ctx.gather_groups(child_pairs.concat_local(self_pairs), |p| p.0);
    grouped.map_local(|(id, pairs)| {
        let children: Vec<ElementId> = pairs
            .iter()
            .map(|(_, c)| *c)
            .filter(|&c| c != VIRTUAL_NODE)
            .collect();
        (*id, children)
    })
}

/// Extend membership assignments with the colored children of already-assigned members
/// (colored elements always follow their parent into its cluster). One join.
fn absorb_colored_children(
    ctx: &mut MpcContext,
    actives: &DistVec<Active>,
    assignments: DistVec<(ElementId, ElementId)>,
) -> DistVec<(ElementId, ElementId)> {
    let colored = actives.clone().filter_local(|a| a.colored);
    let joined = ctx.join_lookup(colored, |a| a.parent, &assignments, |x| x.0);
    let colored_assignments: DistVec<(ElementId, ElementId)> =
        joined.flat_map_local(|(a, found)| match found {
            Some((_, cid)) => vec![(a.id, cid)],
            None => Vec::new(),
        });
    assignments.concat_local(colored_assignments)
}

/// Remove absorbed elements from the active set, recording them in `finished`.
/// One join (a probe when the caller already sorted the assignment table); the
/// iteration over absorbed records models the machine-local write-out of finalized
/// elements.
fn apply_absorption(
    ctx: &mut MpcContext,
    actives: DistVec<Active>,
    assignments: &DistVec<(ElementId, ElementId)>,
    assignments_sorted: Option<&SortedTable<ElementId>>,
    layer: u32,
    finished: &mut Vec<Element>,
) -> DistVec<Active> {
    let tagged = match assignments_sorted {
        Some(sorted) => ctx.join_lookup_sorted(actives, |a| a.id, assignments, sorted),
        None => ctx.join_lookup(actives, |a| a.id, assignments, |x| x.0),
    };
    for (a, assigned) in tagged.iter() {
        if let Some((_, cid)) = assigned {
            finished.push(Element {
                id: a.id,
                kind: a.kind,
                formed_at: a.formed_at,
                absorbed_into: *cid,
                absorbed_at: layer,
                out_edge: a.out_edge,
                in_edge: a.in_edge,
            });
        }
    }
    tagged
        .filter_local(|(_, assigned)| assigned.is_none())
        .map_local(|(a, _)| *a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::shapes;
    use tree_repr::Tree;

    fn cluster_tree(tree: &Tree, delta: f64, threshold: Option<usize>) -> (Clustering, u64) {
        let n = tree.len().max(16);
        let mut ctx = MpcContext::new(MpcConfig::new(n, delta));
        let edges = ctx.from_vec(tree.edges());
        let clustering =
            build_clustering(&mut ctx, &edges, tree.root() as u64, tree.len(), threshold)
                .expect("clustering succeeds");
        (clustering, ctx.metrics().rounds)
    }

    fn assert_valid(tree: &Tree, clustering: &Clustering) {
        let violations = clustering.validate(&tree.edges());
        assert!(
            violations.is_empty(),
            "clustering violations on a {}-node tree: {:?}",
            tree.len(),
            &violations[..violations.len().min(5)]
        );
    }

    #[test]
    fn clusters_a_path() {
        let tree = shapes::path(200);
        let (clustering, _) = cluster_tree(&tree, 0.5, Some(6));
        assert_valid(&tree, &clustering);
        assert!(clustering.num_clusters() > 1);
        assert!(clustering.max_cluster_size() <= 6 * 7);
    }

    #[test]
    fn clusters_a_star_within_threshold() {
        // Degree must stay within the threshold, so use a star of 6 leaves.
        let tree = shapes::star(7);
        let (clustering, _) = cluster_tree(&tree, 0.5, Some(8));
        assert_valid(&tree, &clustering);
    }

    #[test]
    fn rejects_high_degree_input() {
        let tree = shapes::star(100);
        let mut ctx = MpcContext::new(MpcConfig::new(128, 0.5));
        let edges = ctx.from_vec(tree.edges());
        let err = build_clustering(&mut ctx, &edges, 0, tree.len(), Some(8));
        assert!(err.is_err());
        assert!(err.unwrap_err().0.contains("degree"));
    }

    #[test]
    fn clusters_balanced_binary() {
        let tree = shapes::balanced_kary(511, 2);
        let (clustering, _) = cluster_tree(&tree, 0.5, None);
        assert_valid(&tree, &clustering);
    }

    #[test]
    fn clusters_caterpillar() {
        let tree = shapes::caterpillar(80, 3);
        let (clustering, _) = cluster_tree(&tree, 0.5, Some(5));
        assert_valid(&tree, &clustering);
    }

    #[test]
    fn clusters_random_trees() {
        for seed in 0..5 {
            let tree = shapes::random_recursive(300, seed);
            if tree.max_degree() > 8 {
                continue;
            }
            let (clustering, _) = cluster_tree(&tree, 0.5, Some(8));
            assert_valid(&tree, &clustering);
        }
    }

    #[test]
    fn single_node_tree() {
        let tree = Tree::singleton();
        let (clustering, _) = cluster_tree(&tree, 0.5, None);
        assert_valid(&tree, &clustering);
        assert_eq!(clustering.num_clusters(), 1);
    }

    #[test]
    fn layer_count_is_small() {
        // Lemma 4: O(1) layers. With threshold t the layer count should stay well below
        // a small constant multiple of log_t(n).
        for shape in [
            shapes::path(400),
            shapes::balanced_kary(400, 2),
            shapes::spider(4, 100),
        ] {
            let (clustering, _) = cluster_tree(&shape, 0.5, Some(5));
            assert!(
                clustering.num_layers <= 20,
                "too many layers: {}",
                clustering.num_layers
            );
            assert_valid(&shape, &clustering);
        }
    }

    #[test]
    fn rounds_grow_with_diameter_not_size() {
        // Same node count, very different diameters: the deep tree must use more rounds.
        let deep = shapes::path(512);
        let shallow = shapes::balanced_kary(512, 4);
        let (_, rounds_deep) = cluster_tree(&deep, 0.5, Some(11));
        let (_, rounds_shallow) = cluster_tree(&shallow, 0.5, Some(11));
        assert!(
            rounds_shallow < rounds_deep,
            "shallow {rounds_shallow} vs deep {rounds_deep}"
        );
    }
}
