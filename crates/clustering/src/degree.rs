//! Degree reduction: replacing high-degree nodes with `O(1)`-depth trees
//! (Section 4.4 of the paper).
//!
//! The clustering construction assumes maximum degree `n^{δ/2}`. Whenever a node has
//! more children than that, its children are partitioned into groups of at most
//! `n^{δ/2}`, each group is hung below a fresh *auxiliary* node, and the auxiliary nodes
//! become the node's new children; the step repeats until every node is within the
//! bound (a constant number of repetitions, since each level reduces the child count by
//! a factor `n^{δ/2}`). Edges from an original child to its (possibly auxiliary) parent
//! keep the kind [`EdgeKind::Original`]; edges out of auxiliary nodes are
//! [`EdgeKind::Auxiliary`], and DP rules must force both endpoints of an auxiliary edge
//! to represent the same original node (Section 5.3).

use crate::element::EdgeKind;
use mpc_engine::{DistVec, MpcContext};
use tree_repr::{DirectedEdge, NodeId};

/// Base for auxiliary node ids (far above any original node id used in this workspace,
/// but below the 2^48 limit required by cluster-id packing). Public so that structural
/// repair and the serving layer can distinguish original from auxiliary nodes and reject
/// user-supplied ids that would collide with the auxiliary range.
pub const AUX_BASE: NodeId = 1 << 44;

/// `true` if `id` denotes an auxiliary node introduced by [`reduce_degrees`].
pub fn is_aux_node(id: NodeId) -> bool {
    id >= AUX_BASE && id != tree_repr::NodeId::MAX
}

/// Result of [`reduce_degrees`].
#[derive(Debug, Clone)]
pub struct DegreeReduced {
    /// The transformed edge list, each edge tagged original/auxiliary.
    pub edges: DistVec<(DirectedEdge, EdgeKind)>,
    /// The root (unchanged).
    pub root: NodeId,
    /// Total number of nodes after the transformation (original + auxiliary).
    pub num_nodes: usize,
    /// Number of original nodes.
    pub original_nodes: usize,
    /// Mapping from every auxiliary node to the original node it stands in for.
    pub aux_to_original: DistVec<(NodeId, NodeId)>,
}

/// Replace every node with more than `max_children` children by an `O(1)`-depth tree of
/// auxiliary nodes. `O(1)` rounds per level and `O(log_{max_children} Δ)` levels — a
/// constant for `max_children = n^{δ/2}`.
///
/// Returns `None` when `max_children < 2` (the transformation cannot terminate).
pub fn reduce_degrees(
    ctx: &mut MpcContext,
    edges: &DistVec<DirectedEdge>,
    root: NodeId,
    num_nodes: usize,
    max_children: usize,
) -> Option<DegreeReduced> {
    if max_children < 2 {
        return None;
    }
    // Every original edge starts as an Original edge.
    let mut current: DistVec<(DirectedEdge, EdgeKind)> =
        edges.clone().map_local(|e| (*e, EdgeKind::Original));
    let mut aux_map: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next_aux = AUX_BASE;
    let mut total_nodes = num_nodes;

    // Repeat until no node exceeds the bound. Each level: group edges by parent, split
    // oversized families into groups of `max_children` under fresh auxiliary nodes.
    let max_levels = 64; // safety cap; real level count is O(log Δ / log max_children)
    for _ in 0..max_levels {
        let grouped = ctx.gather_groups(current.clone(), |(e, _)| e.parent);
        let oversized = ctx.all_reduce(
            &grouped,
            0u64,
            |acc, (_, g)| acc.max(g.len() as u64),
            |a, b| a.max(b),
        );
        if oversized <= max_children as u64 {
            break;
        }
        let mut rewritten: Vec<(DirectedEdge, EdgeKind)> = Vec::new();
        for (parent, family) in grouped.iter() {
            if family.len() <= max_children {
                rewritten.extend(family.iter().copied());
                continue;
            }
            // The original node the (possibly auxiliary) parent stands for, so that the
            // auxiliary map always points at a real original node.
            let represented = aux_map
                .iter()
                .find(|(aux, _)| aux == parent)
                .map(|(_, orig)| *orig)
                .unwrap_or(*parent);
            for chunk in family.chunks(max_children) {
                let aux = next_aux;
                next_aux += 1;
                total_nodes += 1;
                aux_map.push((aux, represented));
                // The auxiliary node takes over this chunk of children...
                for (edge, kind) in chunk {
                    rewritten.push((DirectedEdge::new(edge.child, aux), *kind));
                }
                // ...and hangs below the parent through an auxiliary edge.
                rewritten.push((DirectedEdge::new(aux, *parent), EdgeKind::Auxiliary));
            }
        }
        current = ctx.from_vec(rewritten);
        current = ctx.rebalance(current);
        ctx.check_memory(&current, "degree-reduction");
    }

    let aux_to_original = ctx.from_vec(aux_map);
    Some(DegreeReduced {
        edges: current,
        root,
        num_nodes: total_nodes,
        original_nodes: num_nodes,
        aux_to_original,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::shapes;
    use tree_repr::Tree;

    fn reduce(tree: &Tree, max_children: usize) -> DegreeReduced {
        let mut ctx = MpcContext::new(MpcConfig::new(tree.len().max(16), 0.5));
        let edges = ctx.from_vec(tree.edges());
        reduce_degrees(
            &mut ctx,
            &edges,
            tree.root() as u64,
            tree.len(),
            max_children,
        )
        .expect("valid bound")
    }

    /// Rebuild a host-side tree over remapped contiguous ids for structural checks.
    fn rebuild(reduced: &DegreeReduced) -> (Tree, Vec<u64>) {
        let edges: Vec<DirectedEdge> = reduced.edges.iter().map(|(e, _)| *e).collect();
        let mut ids: Vec<u64> = edges.iter().flat_map(|e| [e.child, e.parent]).collect();
        ids.push(reduced.root);
        ids.sort();
        ids.dedup();
        let index_of = |id: u64| ids.binary_search(&id).unwrap();
        let mut parents = vec![None; ids.len()];
        for e in &edges {
            parents[index_of(e.child)] = Some(index_of(e.parent));
        }
        (Tree::from_parents(parents), ids)
    }

    #[test]
    fn star_is_reduced_to_bounded_degree() {
        let tree = shapes::star(200);
        let reduced = reduce(&tree, 4);
        let (rebuilt, _) = rebuild(&reduced);
        assert_eq!(reduced.num_nodes, rebuilt.len());
        assert!(rebuilt.max_degree() <= 5, "degree {}", rebuilt.max_degree());
        // All original nodes survive.
        assert!(reduced.num_nodes >= 200);
        assert_eq!(reduced.original_nodes, 200);
    }

    #[test]
    fn diameter_grows_only_by_constant_factor() {
        let tree = shapes::broom(10, 500);
        let reduced = reduce(&tree, 8);
        let (rebuilt, _) = rebuild(&reduced);
        // Section 4.4: the number of nodes and the diameter grow by at most a constant
        // factor; with threshold 8 and 500 leaves the auxiliary tree has depth ≤ 3.
        assert!(rebuilt.diameter() <= tree.diameter() + 8);
        assert!(reduced.num_nodes <= 2 * tree.len());
    }

    #[test]
    fn bounded_tree_is_unchanged() {
        let tree = shapes::balanced_kary(127, 2);
        let reduced = reduce(&tree, 4);
        assert_eq!(reduced.num_nodes, 127);
        assert!(reduced.aux_to_original.is_empty());
        assert!(reduced
            .edges
            .iter()
            .all(|(_, kind)| *kind == EdgeKind::Original));
    }

    #[test]
    fn aux_edges_marked_and_mapped() {
        let tree = shapes::star(50);
        let reduced = reduce(&tree, 4);
        let aux_edges: Vec<_> = reduced
            .edges
            .iter()
            .filter(|(_, kind)| *kind == EdgeKind::Auxiliary)
            .collect();
        assert!(!aux_edges.is_empty());
        // Every auxiliary node maps back to the star's center (node 0).
        for (aux, orig) in reduced.aux_to_original.iter() {
            assert!(*aux >= AUX_BASE);
            assert_eq!(*orig, 0);
        }
        // Original edges always have an original child.
        for (e, kind) in reduced.edges.iter() {
            if *kind == EdgeKind::Original {
                assert!(e.child < AUX_BASE);
            } else {
                assert!(e.child >= AUX_BASE);
            }
        }
    }

    #[test]
    fn rejects_degenerate_bound() {
        let tree = shapes::star(10);
        let mut ctx = MpcContext::new(MpcConfig::new(16, 0.5));
        let edges = ctx.from_vec(tree.edges());
        assert!(reduce_degrees(&mut ctx, &edges, 0, 10, 1).is_none());
    }
}
