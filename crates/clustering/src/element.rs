//! Elements of the hierarchical clustering: original nodes and contracted clusters.

use mpc_engine::Words;
use tree_repr::DirectedEdge;

/// Identifier of an element: either an original node id or a cluster id.
///
/// Cluster ids have the [`CLUSTER_FLAG`] bit set; original node ids must stay below that
/// bit (checked during construction).
pub type ElementId = u64;

/// Bit that distinguishes cluster ids from original node ids.
pub const CLUSTER_FLAG: u64 = 1 << 62;

/// Identifier of the virtual node outside the tree that the root's virtual outgoing edge
/// points to (Section 1.5: "we add at the root an additional virtual edge pointing
/// outside the tree").
pub const VIRTUAL_NODE: ElementId = u64::MAX;

/// `true` if `id` denotes a cluster created during the clustering construction.
pub fn is_cluster_id(id: ElementId) -> bool {
    id != VIRTUAL_NODE && (id & CLUSTER_FLAG) != 0
}

/// Sentinel value of [`Element::absorbed_at`] for the one element that is never
/// absorbed: the top cluster.
///
/// Invariant (asserted by [`Element::is_absorbed`] and checked by
/// [`crate::clustering::Clustering::validate`]): `absorbed_at == UNABSORBED` if and only
/// if `kind == ElementKind::TopCluster`. In particular `0` is **not** a valid absorption
/// layer (layers are numbered from 1) and is **not** interchangeable with the sentinel;
/// structural repair relies on this to distinguish "absorbed at the first layer" from
/// "the unabsorbed top" without consulting the kind.
pub const UNABSORBED: u32 = u32::MAX;

/// Build a cluster id from the layer it is formed at and its defining element
/// (the subtree root for indegree-0 clusters, the topmost path node for indegree-1
/// clusters). Only the low 48 bits of the defining id are used; this is unambiguous
/// because at any point in the construction at most one active element carries a given
/// low-48-bit pattern (original node ids must stay below 2^48).
pub fn make_cluster_id(layer: u32, defining: ElementId) -> ElementId {
    CLUSTER_FLAG | ((layer as u64) << 48) | (defining & ((1 << 48) - 1))
}

/// What an element is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElementKind {
    /// An original node of the (degree-reduced) input tree.
    Node,
    /// An indegree-0 cluster (a fully contracted subtree; drawn as a *colored* node in
    /// Fig. 5 of the paper).
    ClusterIndeg0,
    /// An indegree-1 cluster (a contracted caterpillar around a degree-2 path fragment).
    ClusterIndeg1,
    /// The single topmost cluster containing everything.
    TopCluster,
}

impl ElementKind {
    /// `true` for any of the cluster kinds.
    pub fn is_cluster(&self) -> bool {
        !matches!(self, ElementKind::Node)
    }
}

/// One element of the hierarchical clustering, as recorded in the final output.
///
/// `absorbed_into` / `absorbed_at` say which cluster (and at which layer) this element
/// became a member of; the top cluster is the only element that is never absorbed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Element {
    /// This element's id.
    pub id: ElementId,
    /// What it is.
    pub kind: ElementKind,
    /// Layer at which the element came into existence (0 for original nodes).
    pub formed_at: u32,
    /// Cluster that absorbed it, or [`VIRTUAL_NODE`] for the top cluster.
    pub absorbed_into: ElementId,
    /// Layer at which it was absorbed (`u32::MAX` for the top cluster).
    pub absorbed_at: u32,
    /// The unique *original-tree* edge leaving this element (for the top cluster and the
    /// original root this is the virtual edge `(root, VIRTUAL_NODE)`).
    pub out_edge: DirectedEdge,
    /// For indegree-1 clusters: the unique original-tree edge entering the element.
    pub in_edge: Option<DirectedEdge>,
}

impl Element {
    /// `true` for every element except the top cluster.
    ///
    /// Debug builds assert the [`UNABSORBED`] sentinel invariant: the `u32::MAX`
    /// sentinel appears exactly on the [`ElementKind::TopCluster`] element, so an
    /// `absorbed_at` of `0` (never produced — layers start at 1) can never be confused
    /// with "unabsorbed".
    // mpc-lint: allow(dead-pub-api) — canonical reader of the absorbed_at sentinel; kept public so downstream consumers never compare against UNABSORBED by hand
    pub fn is_absorbed(&self) -> bool {
        debug_assert_eq!(
            self.absorbed_at == UNABSORBED,
            self.kind == ElementKind::TopCluster,
            "absorbed_at sentinel out of sync with kind for element {}",
            self.id
        );
        self.absorbed_at != UNABSORBED
    }
}

impl Words for Element {
    fn words(&self) -> usize {
        10
    }
}

/// Kind of an edge after degree reduction (Sections 4.4 and 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// An edge of the original input tree (possibly re-targeted at an auxiliary node
    /// that stands in for the original parent).
    Original,
    /// An edge between an auxiliary copy of a high-degree node and its parent (another
    /// auxiliary copy or the original node); DP rules must treat both endpoints as the
    /// same original node.
    Auxiliary,
}

impl Words for EdgeKind {
    fn words(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_ids_are_flagged_and_unique_per_layer() {
        let a = make_cluster_id(1, 42);
        let b = make_cluster_id(2, 42);
        let c = make_cluster_id(1, 43);
        assert!(is_cluster_id(a));
        assert!(!is_cluster_id(42));
        assert!(!is_cluster_id(VIRTUAL_NODE));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn kinds_classify() {
        assert!(!ElementKind::Node.is_cluster());
        assert!(ElementKind::ClusterIndeg0.is_cluster());
        assert!(ElementKind::ClusterIndeg1.is_cluster());
        assert!(ElementKind::TopCluster.is_cluster());
    }

    #[test]
    fn absorbed_at_sentinel_is_unambiguous() {
        let absorbed_at_layer_1 = Element {
            id: 1,
            kind: ElementKind::Node,
            formed_at: 0,
            absorbed_into: make_cluster_id(1, 0),
            absorbed_at: 1,
            out_edge: DirectedEdge::new(1, 2),
            in_edge: None,
        };
        assert!(absorbed_at_layer_1.is_absorbed());
        let top = Element {
            id: make_cluster_id(3, 0),
            kind: ElementKind::TopCluster,
            formed_at: 3,
            absorbed_into: VIRTUAL_NODE,
            absorbed_at: UNABSORBED,
            out_edge: DirectedEdge::new(0, VIRTUAL_NODE),
            in_edge: None,
        };
        assert!(!top.is_absorbed());
    }

    #[test]
    #[should_panic(expected = "absorbed_at sentinel out of sync")]
    #[cfg(debug_assertions)]
    fn absorbed_at_sentinel_on_non_top_is_caught() {
        let bogus = Element {
            id: 7,
            kind: ElementKind::Node,
            formed_at: 0,
            absorbed_into: make_cluster_id(1, 0),
            absorbed_at: UNABSORBED,
            out_edge: DirectedEdge::new(7, 2),
            in_edge: None,
        };
        let _ = bogus.is_absorbed();
    }

    #[test]
    fn element_word_size_is_constant() {
        let e = Element {
            id: 1,
            kind: ElementKind::Node,
            formed_at: 0,
            absorbed_into: make_cluster_id(1, 0),
            absorbed_at: 1,
            out_edge: DirectedEdge::new(1, 2),
            in_edge: None,
        };
        assert_eq!(e.words(), 10);
    }
}
