//! The `O(log D)`-round subroutines the clustering construction is built from.
//!
//! The paper uses `CountSubtreeSizes`, `GatherSubtrees` and `CountDistances` from
//! Balliu et al. (SODA 2023) as black boxes. This module re-implements them on top of
//! the `mpc-engine` primitives:
//!
//! * [`count_subtree_sizes`] — capped descendant-set doubling. Every node maintains the
//!   set of descendants it has discovered (within the uncolored subgraph); one doubling
//!   step replaces the set by the union of its members' sets, so after `⌈log₂ h⌉` steps
//!   (`h` = height of the uncolored subgraph, `h ≤ D`) every node either knows its
//!   subtree exactly or knows that it exceeds the cap `n^{δ/2}`. This is the documented
//!   substitution for Lemma 6.13 of [4]: round-optimal (`O(log D)`), deterministic, but
//!   using up to `O(n · n^{δ/2})` global memory instead of `O(n)`.
//! * [`path_distances`] — pointer doubling along degree-2 paths (Lemma 6.17 of [4]).
//!   Any path in a tree has length at most `D`, so `⌈log₂ D⌉` jump rounds suffice.
//!
//! `GatherSubtrees` (Lemma 6.14) needs no separate routine here: once a light node knows
//! its exact descendant set, membership assignments are distributed with one join.

use crate::element::ElementId;
use mpc_engine::{DistVec, MpcContext, Words};

/// Result of [`count_subtree_sizes`] for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
// mpc-lint: allow(dead-pub-api) — named return type of count_subtree_sizes; callers read fields via inference
pub struct SubtreeInfo {
    /// The node this record describes.
    pub id: ElementId,
    /// `true` when the node has strictly more than `cap` descendants (itself included).
    pub heavy: bool,
    /// The node's full descendant set (itself included), exact whenever `heavy == false`.
    pub descendants: Vec<ElementId>,
}

impl Words for SubtreeInfo {
    fn words(&self) -> usize {
        3 + self.descendants.len()
    }
}

#[derive(Debug, Clone)]
struct SizeState {
    id: ElementId,
    heavy: bool,
    set: Vec<ElementId>,
    /// `true` once the set can no longer grow (either heavy or a fixpoint was reached).
    stable: bool,
}

impl Words for SizeState {
    fn words(&self) -> usize {
        4 + self.set.len()
    }
}

/// For every node of a rooted forest (given as `(node, children)` adjacency), determine
/// whether its subtree holds more than `cap` nodes, and if not, its exact descendant set.
///
/// `children` must list, for every participating node, its children *within the
/// participating node set* (nodes absent from the map are treated as leaves).
/// Runs `O(log h)` doubling iterations where `h` is the forest height, each iteration a
/// constant number of MPC primitives.
pub fn count_subtree_sizes(
    ctx: &mut MpcContext,
    adjacency: DistVec<(ElementId, Vec<ElementId>)>,
    cap: usize,
) -> DistVec<SubtreeInfo> {
    // Seed: every node knows itself and its children (distance ≤ 1), as a sorted
    // set. A heavy node's descendant set is dead weight — nothing ever reads it (the
    // final output drops it, and any node that unions a heavy descendant becomes
    // heavy itself) — so heavy states carry an empty set instead of shipping useless
    // ids around.
    let mut states: DistVec<SizeState> = adjacency.map_local(|(id, children)| {
        let mut set = Vec::with_capacity(children.len() + 1);
        set.push(*id);
        set.extend(children.iter().copied());
        set.sort_unstable();
        set.dedup();
        let heavy = set.len() > cap;
        if heavy {
            set = Vec::new();
        }
        SizeState {
            id: *id,
            heavy,
            stable: heavy,
            set,
        }
    });
    ctx.check_memory(&states, "count_subtree_sizes/seed");

    // The frontier of a node: the descendants discovered in the *previous* step. One
    // doubling step only needs the sets of the frontier — every element of the next
    // ball has an ancestor in the frontier band (interior members' balls are already
    // contained in the union of frontier balls) — which shrinks request and answer
    // volume by the interior/frontier ratio. The frontier is simulator bookkeeping
    // derived from two consecutive sets, so it lives beside the states (aligned with
    // the chunk layout, which in-place merging preserves) and never travels.
    let mut frontiers: Vec<Vec<Vec<ElementId>>> = states
        .chunks()
        .iter()
        .map(|chunk| {
            chunk
                .iter()
                .map(|s| {
                    if s.stable {
                        Vec::new()
                    } else {
                        s.set.iter().copied().filter(|&d| d != s.id).collect()
                    }
                })
                .collect()
        })
        .collect();

    loop {
        // One doubling step: fetch the set of every frontier descendant and union it
        // into the ball. A node's requests are emitted contiguously on its own
        // machine, and the join returns its answers in request order on that same
        // machine — so the per-node union is machine-local: no `gather_groups`
        // detour and no second join to merge the unions back (both used to move
        // every answer across the network again).
        // mpc-lint: allow(metered-exchange) — requests are emitted on the machine owning the state; chunk i stays put
        let requests: DistVec<(ElementId, ElementId)> = DistVec::from_chunks(
            states
                .chunks()
                .iter()
                .zip(frontiers.iter())
                .map(|(chunk, chunk_frontiers)| {
                    chunk
                        .iter()
                        .zip(chunk_frontiers.iter())
                        .filter(|(s, _)| !s.stable)
                        .flat_map(|(s, frontier)| frontier.iter().map(|&d| (s.id, d)))
                        .collect()
                })
                .collect(),
        );
        if requests.is_empty() {
            break;
        }
        let answered = ctx.join_lookup(requests, |r| r.1, &states, |s| s.id);
        // Walk states and answers chunk by chunk in lockstep: the answers of one
        // non-stable state are exactly the next `frontier.len()` records of its chunk.
        let mut changed = 0u64;
        let mut union: Vec<ElementId> = Vec::new();
        for ((state_chunk, chunk_frontiers), answer_chunk) in states
            // mpc-lint: allow(metered-exchange) — in-place union over each machine's own records
            .chunks_mut()
            .iter_mut()
            .zip(frontiers.iter_mut())
            // mpc-lint: allow(metered-exchange) — join answers are consumed on the machine that issued the requests
            .zip(answered.into_chunks())
        {
            let mut answers = answer_chunk.into_iter();
            for (state, frontier) in state_chunk.iter_mut().zip(chunk_frontiers.iter_mut()) {
                if state.stable {
                    continue;
                }
                union.clear();
                union.extend_from_slice(&state.set);
                let mut heavy = false;
                for _ in 0..frontier.len() {
                    let ((owner, _), found) = answers.next().expect("answer per request");
                    debug_assert_eq!(owner, state.id, "answers aligned with requests");
                    if let Some(child_state) = found {
                        if child_state.heavy {
                            heavy = true;
                        }
                        union.extend(child_state.set.iter().copied());
                    }
                }
                union.sort_unstable();
                union.dedup();
                if union.len() > cap {
                    heavy = true;
                }
                let grew = union.len() > state.set.len() || (heavy && !state.heavy);
                if grew {
                    changed += 1;
                }
                state.heavy |= heavy;
                frontier.clear();
                if heavy {
                    state.set.clear();
                    state.stable = true;
                } else {
                    // New frontier: union \ old set (both sorted ascending).
                    let mut old = state.set.iter().copied().peekable();
                    for &u in &union {
                        match old.peek() {
                            Some(&o) if o == u => {
                                old.next();
                            }
                            _ => frontier.push(u),
                        }
                    }
                    state.set.clear();
                    state.set.extend_from_slice(&union);
                    state.stable = frontier.is_empty();
                }
            }
            debug_assert!(answers.next().is_none(), "all answers consumed");
        }
        ctx.check_memory(&states, "count_subtree_sizes/step");
        let total_changed = ctx.broadcast(changed);
        if total_changed == 0 {
            break;
        }
    }

    states.map_local(|s| SubtreeInfo {
        id: s.id,
        heavy: s.heavy,
        descendants: if s.heavy { Vec::new() } else { s.set.clone() },
    })
}

/// Input record for [`path_distances`]: one node of a degree-2 path, with its neighbor
/// above and below, each tagged with whether that neighbor is itself a path node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNode {
    /// The path node.
    pub id: ElementId,
    /// Its parent (always exists; a path node is never the root).
    pub up: ElementId,
    /// Whether the parent is also a degree-2 path node.
    pub up_is_path: bool,
    /// Its unique uncolored child.
    pub down: ElementId,
    /// Whether that child is also a degree-2 path node.
    pub down_is_path: bool,
}

impl Words for PathNode {
    fn words(&self) -> usize {
        5
    }
}

/// Output of [`path_distances`] for one path node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathPosition {
    /// The path node.
    pub id: ElementId,
    /// First non-path ancestor (the node the topmost path node hangs from).
    pub top_anchor: ElementId,
    /// Distance (in edges) to `top_anchor` — the paper's "upwards position".
    pub dist_up: u64,
    /// First non-path descendant below the path — unique per path, used as the path id.
    pub bottom_anchor: ElementId,
    /// Distance (in edges) to `bottom_anchor` — the paper's "downwards position".
    pub dist_down: u64,
}

impl Words for PathPosition {
    fn words(&self) -> usize {
        5
    }
}

#[derive(Debug, Clone, Copy)]
struct JumpState {
    id: ElementId,
    ptr: Option<ElementId>,
    dist: u64,
    anchor: ElementId,
}

impl Words for JumpState {
    fn words(&self) -> usize {
        5
    }
}

/// Pointer-doubling along one direction of the path: every node ends up knowing the
/// first non-path node in that direction and its distance to it.
fn jump(ctx: &mut MpcContext, init: Vec<JumpState>) -> Vec<(ElementId, ElementId, u64)> {
    let mut states: DistVec<JumpState> = ctx.from_vec(init);
    loop {
        let pending = ctx.all_reduce(
            &states,
            0u64,
            |acc, s| acc + u64::from(s.ptr.is_some()),
            |a, b| a + b,
        );
        if pending == 0 {
            break;
        }
        let snapshot = states.clone();
        let joined = ctx.join_lookup(states, |s| s.ptr.unwrap_or(u64::MAX), &snapshot, |s| s.id);
        states = joined.map_local(|(s, found)| match (s.ptr, found) {
            (Some(_), Some(t)) => JumpState {
                id: s.id,
                ptr: t.ptr,
                dist: s.dist + t.dist,
                anchor: t.anchor,
            },
            _ => *s,
        });
        ctx.check_memory(&states, "path_distances/jump");
    }
    states.iter().map(|s| (s.id, s.anchor, s.dist)).collect()
}

/// Compute, for every degree-2 path node, its distance to both endpoints of its maximal
/// path (the paper's `CountDistances`). `O(log D)` rounds.
pub fn path_distances(ctx: &mut MpcContext, nodes: DistVec<PathNode>) -> DistVec<PathPosition> {
    if nodes.is_empty() {
        return ctx.empty();
    }
    let up_init: Vec<JumpState> = nodes
        .iter()
        .map(|n| JumpState {
            id: n.id,
            ptr: if n.up_is_path { Some(n.up) } else { None },
            dist: 1,
            anchor: n.up,
        })
        .collect();
    let down_init: Vec<JumpState> = nodes
        .iter()
        .map(|n| JumpState {
            id: n.id,
            ptr: if n.down_is_path { Some(n.down) } else { None },
            dist: 1,
            anchor: n.down,
        })
        .collect();
    let ups = jump(ctx, up_init);
    let downs = jump(ctx, down_init);
    // Both jump passes preserve the input record order (their states only ever act
    // as join *requests*), so the two result lists are aligned: combining them is a
    // machine-local zip, not another join.
    let positions: Vec<PathPosition> = ups
        .into_iter()
        .zip(downs)
        .map(|(up, down)| {
            debug_assert_eq!(up.0, down.0, "jump passes stay aligned");
            PathPosition {
                id: up.0,
                top_anchor: up.1,
                dist_up: up.2,
                bottom_anchor: down.1,
                dist_down: down.2,
            }
        })
        .collect();
    ctx.from_vec(positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::shapes;
    use tree_repr::Tree;

    fn ctx(n: usize) -> MpcContext {
        MpcContext::new(MpcConfig::new(n.max(16), 0.5))
    }

    fn adjacency_of(tree: &Tree) -> Vec<(ElementId, Vec<ElementId>)> {
        (0..tree.len())
            .map(|v| {
                (
                    v as u64,
                    tree.children(v).iter().map(|&c| c as u64).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn subtree_sizes_exact_below_cap() {
        let tree = shapes::balanced_kary(31, 2);
        let mut c = ctx(64);
        let adj = c.from_vec(adjacency_of(&tree));
        let info = count_subtree_sizes(&mut c, adj, 100);
        let sizes = tree.subtree_sizes();
        for rec in info.into_vec() {
            assert!(!rec.heavy);
            assert_eq!(
                rec.descendants.len(),
                sizes[rec.id as usize],
                "node {}",
                rec.id
            );
        }
    }

    #[test]
    fn subtree_sizes_heavy_above_cap() {
        let tree = shapes::path(64);
        let mut c = ctx(64);
        let adj = c.from_vec(adjacency_of(&tree));
        let cap = 10;
        let info = count_subtree_sizes(&mut c, adj, cap);
        let sizes = tree.subtree_sizes();
        for rec in info.into_vec() {
            let expected_heavy = sizes[rec.id as usize] > cap;
            assert_eq!(rec.heavy, expected_heavy, "node {}", rec.id);
            if !rec.heavy {
                assert_eq!(rec.descendants.len(), sizes[rec.id as usize]);
            }
        }
    }

    #[test]
    fn subtree_size_rounds_scale_with_height_not_size() {
        // A shallow wide tree and a deep path of the same size: the shallow tree must
        // need far fewer rounds.
        let shallow = shapes::star(256);
        let deep = shapes::path(256);
        let mut rounds = Vec::new();
        for tree in [&shallow, &deep] {
            let mut c = ctx(256);
            let adj = c.from_vec(adjacency_of(tree));
            let _ = count_subtree_sizes(&mut c, adj, 8);
            rounds.push(c.metrics().rounds);
        }
        assert!(
            rounds[0] < rounds[1],
            "star {} vs path {}",
            rounds[0],
            rounds[1]
        );
    }

    #[test]
    fn path_distances_on_pure_path() {
        // Path 0→1→…→9 rooted at 0; nodes 1..=8 are degree-2 (node 9 is a leaf, node 0
        // is the root). Path nodes: 1..=8, top anchor 0, bottom anchor 9.
        let mut c = ctx(32);
        let nodes: Vec<PathNode> = (1..=8u64)
            .map(|v| PathNode {
                id: v,
                up: v - 1,
                up_is_path: v > 1,
                down: v + 1,
                down_is_path: v < 8,
            })
            .collect();
        let dv = c.from_vec(nodes);
        let out = path_distances(&mut c, dv).into_vec();
        for p in out {
            assert_eq!(p.top_anchor, 0, "node {}", p.id);
            assert_eq!(p.bottom_anchor, 9, "node {}", p.id);
            assert_eq!(p.dist_up, p.id, "node {}", p.id);
            assert_eq!(p.dist_down, 9 - p.id, "node {}", p.id);
        }
    }

    #[test]
    fn path_distances_multiple_paths() {
        // A spider with 3 legs of length 6: each leg's internal nodes form a separate
        // degree-2 path with the center as top anchor and the leaf as bottom anchor.
        let tree = shapes::spider(3, 6);
        let mut c = ctx(64);
        let depths = tree.depths();
        let mut path_nodes = Vec::new();
        for v in 0..tree.len() {
            let is_path = tree.children(v).len() == 1 && tree.parent(v).is_some();
            if !is_path {
                continue;
            }
            let up = tree.parent(v).unwrap();
            let down = tree.children(v)[0];
            path_nodes.push(PathNode {
                id: v as u64,
                up: up as u64,
                up_is_path: tree.children(up).len() == 1 && tree.parent(up).is_some(),
                down: down as u64,
                down_is_path: tree.children(down).len() == 1,
            });
        }
        let dv = c.from_vec(path_nodes.clone());
        let out = path_distances(&mut c, dv).into_vec();
        assert_eq!(out.len(), path_nodes.len());
        for p in &out {
            assert_eq!(p.top_anchor, 0);
            assert_eq!(p.dist_up, depths[p.id as usize] as u64);
            assert_eq!(p.dist_up + p.dist_down, 6);
            // Bottom anchor must be the leg's leaf.
            assert!(tree.children(p.bottom_anchor as usize).is_empty());
        }
        // Distinct legs have distinct bottom anchors (the path identifier property).
        let mut anchors: Vec<u64> = out.iter().map(|p| p.bottom_anchor).collect();
        anchors.sort();
        anchors.dedup();
        assert_eq!(anchors.len(), 3);
    }

    #[test]
    fn empty_inputs() {
        let mut c = ctx(16);
        let empty_nodes: DistVec<PathNode> = c.empty();
        assert!(path_distances(&mut c, empty_nodes).is_empty());
    }
}
