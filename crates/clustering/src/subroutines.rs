//! The `O(log D)`-round subroutines the clustering construction is built from.
//!
//! The paper uses `CountSubtreeSizes`, `GatherSubtrees` and `CountDistances` from
//! Balliu et al. (SODA 2023) as black boxes. This module re-implements them on top of
//! the `mpc-engine` primitives:
//!
//! * [`count_subtree_sizes`] — capped descendant-set doubling. Every node maintains the
//!   set of descendants it has discovered (within the uncolored subgraph); one doubling
//!   step replaces the set by the union of its members' sets, so after `⌈log₂ h⌉` steps
//!   (`h` = height of the uncolored subgraph, `h ≤ D`) every node either knows its
//!   subtree exactly or knows that it exceeds the cap `n^{δ/2}`. This is the documented
//!   substitution for Lemma 6.13 of [4]: round-optimal (`O(log D)`), deterministic, but
//!   using up to `O(n · n^{δ/2})` global memory instead of `O(n)`.
//! * [`path_distances`] — pointer doubling along degree-2 paths (Lemma 6.17 of [4]).
//!   Any path in a tree has length at most `D`, so `⌈log₂ D⌉` jump rounds suffice.
//!
//! `GatherSubtrees` (Lemma 6.14) needs no separate routine here: once a light node knows
//! its exact descendant set, membership assignments are distributed with one join.
//!
//! ## Fused convergence-aware execution
//!
//! Both subroutines run on [`MpcContext::converge`] by default: the state table is
//! indexed once, each doubling step is one fused emit/probe/update exchange (priced as
//! a join on the first step and a lookup afterwards), converged elements stop emitting
//! requests — so machines whose records have all settled drop out of later exchanges —
//! and the final "nothing left to ask" step costs no rounds at all. Both directions of
//! the path pointer-doubling advance in the *same* exchange instead of two sequential
//! jump loops. [`MpcConfig::convergence_skip`](mpc_engine::MpcConfig::convergence_skip)
//! `= false` selects the legacy step-by-step loops (kept for equivalence testing); the
//! two paths produce bit-identical outputs and the fused path never uses more rounds.

use crate::element::ElementId;
use mpc_engine::{DistVec, MpcContext, Words};
use tree_repr::DirectedEdge;

/// Result of [`count_subtree_sizes`] for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
// mpc-lint: allow(dead-pub-api) — named return type of count_subtree_sizes; callers read fields via inference
pub struct SubtreeInfo {
    /// The node this record describes.
    pub id: ElementId,
    /// `true` when the node has strictly more than `cap` descendants (itself included).
    pub heavy: bool,
    /// The node's full descendant set (itself included), exact whenever `heavy == false`.
    pub descendants: Vec<ElementId>,
}

impl Words for SubtreeInfo {
    fn words(&self) -> usize {
        3 + self.descendants.len()
    }
}

#[derive(Debug, Clone)]
struct SizeState {
    id: ElementId,
    heavy: bool,
    set: Vec<ElementId>,
    /// `true` once the set can no longer grow (either heavy or a fixpoint was reached).
    stable: bool,
    /// Descendants discovered in the *previous* step — the only ones whose sets the
    /// next step has to fetch (every element of the next ball has an ancestor in the
    /// frontier band). Simulator bookkeeping derived from two consecutive sets, kept
    /// beside the state so the fused loop can emit from it; it never travels as state
    /// payload, hence excluded from `words()` (matching the legacy loop's convention
    /// of external frontier storage).
    frontier: Vec<ElementId>,
}

impl Words for SizeState {
    fn words(&self) -> usize {
        4 + self.set.len()
    }
}

/// What one doubling step ships back per fetched descendant: its heaviness and its
/// current ball. Slimmer than the full state (no id, no flags, no frontier).
struct SizeAnswer {
    heavy: bool,
    set: Vec<ElementId>,
}

impl Words for SizeAnswer {
    fn words(&self) -> usize {
        2 + self.set.len()
    }
}

/// Seed: every node knows itself and its children (distance ≤ 1), as a sorted set. A
/// heavy node's descendant set is dead weight — nothing ever reads it (the final
/// output drops it, and any node that unions a heavy descendant becomes heavy itself)
/// — so heavy states carry an empty set instead of shipping useless ids around.
fn seed_size_states(
    adjacency: DistVec<(ElementId, Vec<ElementId>)>,
    cap: usize,
) -> DistVec<SizeState> {
    adjacency.map_local(|(id, children)| {
        let mut set = Vec::with_capacity(children.len() + 1);
        set.push(*id);
        set.extend(children.iter().copied());
        set.sort_unstable();
        set.dedup();
        let heavy = set.len() > cap;
        if heavy {
            set = Vec::new();
        }
        let frontier: Vec<ElementId> = if heavy {
            Vec::new()
        } else {
            set.iter().copied().filter(|&d| d != *id).collect()
        };
        SizeState {
            id: *id,
            heavy,
            stable: heavy,
            set,
            frontier,
        }
    })
}

/// One node's share of a doubling step: union the fetched balls (as `(heavy, set)`
/// views) into its own, re-check the cap, and derive the next frontier
/// (`union \ old set`, both sorted). Shared verbatim by the fused and the legacy loop
/// so the two stay bit-identical.
///
/// This is the dominant machine-local work of `cluster-sizes`, so it exploits the
/// sortedness invariants instead of re-sorting: a heavy answer decides the state
/// without touching the sets at all; the one-answer case (every element of a path,
/// the shape that maximizes doubling work) is a linear two-way merge that bails as
/// soon as `cap` is exceeded; only the multi-answer case (whose balls may overlap)
/// pays the general sort + dedup.
fn union_step<'a>(
    state: &mut SizeState,
    found: impl Iterator<Item = Option<(bool, &'a [ElementId])>>,
    cap: usize,
) {
    let mut heavy = false;
    let mut first: Option<&[ElementId]> = None;
    let mut rest: Vec<ElementId> = Vec::new();
    for (child_heavy, child_set) in found.flatten() {
        if child_heavy {
            heavy = true;
        }
        match first {
            None => first = Some(child_set),
            Some(f) => {
                if rest.is_empty() {
                    rest.reserve(f.len() + child_set.len());
                    rest.extend_from_slice(f);
                }
                rest.extend_from_slice(child_set);
            }
        }
    }
    state.frontier.clear();
    // A heavy ball anywhere below makes this subtree heavy — no union needed.
    if heavy {
        state.heavy = true;
        state.stable = true;
        state.set.clear();
        return;
    }
    let Some(first) = first else {
        // Nothing came back (an empty frontier's no-op step): the set is final.
        state.stable = true;
        return;
    };
    if rest.is_empty() {
        // One ball: both sides are sorted and duplicate-free, so merge linearly,
        // recording the genuinely new elements as the next frontier and bailing
        // the moment the union exceeds the cap.
        let old_len = state.set.len();
        let (mut i, mut j) = (0usize, 0usize);
        let mut merged: Vec<ElementId> = Vec::with_capacity((old_len + first.len()).min(cap + 1));
        while merged.len() <= cap {
            match (state.set.get(i), first.get(j)) {
                (Some(&a), Some(&b)) if a == b => {
                    merged.push(a);
                    i += 1;
                    j += 1;
                }
                (Some(&a), Some(&b)) if a < b => {
                    merged.push(a);
                    i += 1;
                }
                (_, Some(&b)) => {
                    merged.push(b);
                    state.frontier.push(b);
                    j += 1;
                }
                (Some(&a), None) => {
                    merged.push(a);
                    i += 1;
                }
                (None, None) => break,
            }
        }
        if merged.len() > cap {
            state.heavy = true;
            state.stable = true;
            state.frontier.clear();
            state.set.clear();
        } else {
            state.set = merged;
            state.stable = state.frontier.is_empty();
        }
        return;
    }
    // Several balls: they may overlap each other (a frontier element can be an
    // ancestor of another), so fall back to sort + dedup over the concatenation.
    let mut union = rest;
    union.extend_from_slice(&state.set);
    union.sort_unstable();
    union.dedup();
    if union.len() > cap {
        state.heavy = true;
        state.stable = true;
        state.set.clear();
        return;
    }
    // New frontier: union \ old set (both sorted ascending).
    let mut old = state.set.iter().copied().peekable();
    for &u in &union {
        match old.peek() {
            Some(&o) if o == u => {
                old.next();
            }
            _ => state.frontier.push(u),
        }
    }
    state.set = union;
    state.stable = state.frontier.is_empty();
}

/// For every node of a rooted forest (given as `(node, children)` adjacency), determine
/// whether its subtree holds more than `cap` nodes, and if not, its exact descendant set.
///
/// `children` must list, for every participating node, its children *within the
/// participating node set* (nodes absent from the map are treated as leaves).
/// Runs `O(log h)` doubling iterations where `h` is the forest height; on the default
/// fused path the whole loop costs `join + (steps − 1) · lookup` rounds, with machines
/// whose nodes have all stabilized dropping out of the exchanges.
// mpc-cost: rounds(log)
pub fn count_subtree_sizes(
    ctx: &mut MpcContext,
    adjacency: DistVec<(ElementId, Vec<ElementId>)>,
    cap: usize,
) -> DistVec<SubtreeInfo> {
    let states = if ctx.config().convergence_skip {
        count_subtree_sizes_fused(ctx, adjacency, cap)
    } else {
        count_subtree_sizes_legacy(ctx, adjacency, cap)
    };
    states.map_local(|s| SubtreeInfo {
        id: s.id,
        heavy: s.heavy,
        descendants: if s.heavy { Vec::new() } else { s.set.clone() },
    })
}

/// Fused path: the whole doubling loop is one [`MpcContext::converge`] call. Each step
/// fetches the balls of the frontier band and unions them in place; stable nodes emit
/// nothing, so fully-stable machines leave the exchange entirely.
fn count_subtree_sizes_fused(
    ctx: &mut MpcContext,
    adjacency: DistVec<(ElementId, Vec<ElementId>)>,
    cap: usize,
) -> DistVec<SizeState> {
    let mut states = seed_size_states(adjacency, cap);
    ctx.check_memory(&states, "count_subtree_sizes/seed");
    ctx.converge(
        &mut states,
        |s| s.id,
        |s, out| out.extend(s.frontier.iter().copied()),
        |s| SizeAnswer {
            heavy: s.heavy,
            set: s.set.clone(),
        },
        |s, answers| {
            if s.stable {
                debug_assert!(answers.is_empty(), "stable nodes emit no requests");
                return;
            }
            union_step(
                s,
                answers
                    .iter()
                    .map(|(_, a)| a.as_ref().map(|a| (a.heavy, a.set.as_slice()))),
                cap,
            );
        },
        "count_subtree_sizes",
    );
    states
}

/// Legacy loop (selected by `convergence_skip = false`): one full `join_lookup` plus a
/// termination broadcast per doubling step, frontiers stored beside the states.
fn count_subtree_sizes_legacy(
    ctx: &mut MpcContext,
    adjacency: DistVec<(ElementId, Vec<ElementId>)>,
    cap: usize,
) -> DistVec<SizeState> {
    let mut states = seed_size_states(adjacency, cap);
    ctx.check_memory(&states, "count_subtree_sizes/seed");

    loop {
        // One doubling step: fetch the set of every frontier descendant and union it
        // into the ball. A node's requests are emitted contiguously on its own
        // machine, and the join returns its answers in request order on that same
        // machine — so the per-node union is machine-local: no `gather_groups`
        // detour and no second join to merge the unions back (both used to move
        // every answer across the network again).
        // mpc-lint: allow(metered-exchange) — requests are emitted on the machine owning the state; chunk i stays put
        let requests: DistVec<(ElementId, ElementId)> = DistVec::from_chunks(
            states
                .chunks()
                .iter()
                .map(|chunk| {
                    chunk
                        .iter()
                        .filter(|s| !s.stable)
                        .flat_map(|s| s.frontier.iter().map(|&d| (s.id, d)))
                        .collect()
                })
                .collect(),
        );
        if requests.is_empty() {
            break;
        }
        let answered = ctx.join_lookup(requests, |r| r.1, &states, |s| s.id);
        // Walk states and answers chunk by chunk in lockstep: the answers of one
        // non-stable state are exactly the next `frontier.len()` records of its chunk.
        let mut changed = 0u64;
        for (state_chunk, answer_chunk) in states
            // mpc-lint: allow(metered-exchange) — in-place union over each machine's own records
            .chunks_mut()
            .iter_mut()
            // mpc-lint: allow(metered-exchange) — join answers are consumed on the machine that issued the requests
            .zip(answered.into_chunks())
        {
            let mut answers = answer_chunk.into_iter();
            for state in state_chunk.iter_mut() {
                if state.stable {
                    continue;
                }
                let fetched: Vec<Option<SizeState>> = (0..state.frontier.len())
                    .map(|_| {
                        let ((owner, _), found) = answers.next().expect("answer per request");
                        debug_assert_eq!(owner, state.id, "answers aligned with requests");
                        found
                    })
                    .collect();
                let before = (state.set.len(), state.heavy);
                union_step(
                    state,
                    fetched
                        .iter()
                        .map(|o| o.as_ref().map(|c| (c.heavy, c.set.as_slice()))),
                    cap,
                );
                if (state.set.len(), state.heavy) != before {
                    changed += 1;
                }
            }
            debug_assert!(answers.next().is_none(), "all answers consumed");
        }
        ctx.check_memory(&states, "count_subtree_sizes/step");
        let total_changed = ctx.broadcast(changed);
        if total_changed == 0 {
            break;
        }
    }
    states
}

/// Input record for [`path_distances`]: one node of a degree-2 path, with its neighbor
/// above and below, each tagged with whether that neighbor is itself a path node, plus
/// the two original-tree edges the node attaches through (carried as inert payload so
/// the caller can assemble path fragments join-free from the output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathNode {
    /// The path node.
    pub id: ElementId,
    /// Its parent (always exists; a path node is never the root).
    pub up: ElementId,
    /// Whether the parent is also a degree-2 path node.
    pub up_is_path: bool,
    /// Its unique uncolored child.
    pub down: ElementId,
    /// Whether that child is also a degree-2 path node.
    pub down_is_path: bool,
    /// The original-tree edge from this element towards its parent.
    pub out_edge: DirectedEdge,
    /// The original-tree edge from the unique uncolored child towards this element.
    pub child_edge: DirectedEdge,
}

impl Words for PathNode {
    fn words(&self) -> usize {
        9
    }
}

/// Output of [`path_distances`] for one path node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathPosition {
    /// The path node.
    pub id: ElementId,
    /// First non-path ancestor (the node the topmost path node hangs from).
    pub top_anchor: ElementId,
    /// Distance (in edges) to `top_anchor` — the paper's "upwards position".
    pub dist_up: u64,
    /// First non-path descendant below the path — unique per path, used as the path id.
    pub bottom_anchor: ElementId,
    /// Distance (in edges) to `bottom_anchor` — the paper's "downwards position".
    pub dist_down: u64,
    /// The node's immediate parent element (input [`PathNode::up`], passed through).
    pub up: ElementId,
    /// The node's outgoing original-tree edge (input payload, passed through).
    pub out_edge: DirectedEdge,
    /// The unique uncolored child's outgoing edge (input payload, passed through).
    pub child_edge: DirectedEdge,
}

impl Words for PathPosition {
    fn words(&self) -> usize {
        10
    }
}

#[derive(Debug, Clone, Copy)]
struct JumpState {
    id: ElementId,
    ptr: Option<ElementId>,
    dist: u64,
    anchor: ElementId,
}

impl Words for JumpState {
    fn words(&self) -> usize {
        5
    }
}

/// Fused per-node state: both pointer-doubling directions advance in the same
/// exchange. A direction is done when its pointer is `None`; a node with both
/// directions done emits nothing, and a machine whose nodes are all done drops out.
#[derive(Debug, Clone, Copy)]
struct PathState {
    node: PathNode,
    up_ptr: Option<ElementId>,
    dist_up: u64,
    top_anchor: ElementId,
    down_ptr: Option<ElementId>,
    dist_down: u64,
    bottom_anchor: ElementId,
}

impl Words for PathState {
    fn words(&self) -> usize {
        self.node.words() + self.up_ptr.words() + self.down_ptr.words() + 4
    }
}

/// One jump answer: the probed node's pre-step pointers, distances and anchors for
/// both directions (the prober consumes the half matching the direction it asked for).
#[derive(Debug, Clone, Copy)]
struct JumpAnswer {
    up_ptr: Option<ElementId>,
    dist_up: u64,
    top_anchor: ElementId,
    down_ptr: Option<ElementId>,
    dist_down: u64,
    bottom_anchor: ElementId,
}

impl Words for JumpAnswer {
    fn words(&self) -> usize {
        self.up_ptr.words() + self.down_ptr.words() + 4
    }
}

fn seed_path_state(n: &PathNode) -> PathState {
    PathState {
        node: *n,
        up_ptr: if n.up_is_path { Some(n.up) } else { None },
        dist_up: 1,
        top_anchor: n.up,
        down_ptr: if n.down_is_path { Some(n.down) } else { None },
        dist_down: 1,
        bottom_anchor: n.down,
    }
}

/// Merge one probed answer into one direction of a state: follow the target's pointer,
/// accumulate its distance, adopt its anchor. A miss leaves the direction untouched
/// (mirroring the legacy jump loop; by the path invariant every live pointer resolves).
fn merge_jump(
    ptr: &mut Option<ElementId>,
    dist: &mut u64,
    anchor: &mut ElementId,
    next: Option<(Option<ElementId>, u64, ElementId)>,
) {
    if let Some((t_ptr, t_dist, t_anchor)) = next {
        *ptr = t_ptr;
        *dist += t_dist;
        *anchor = t_anchor;
    }
}

/// Pointer-doubling along one direction of the path: every node ends up knowing the
/// first non-path node in that direction and its distance to it.
fn jump(ctx: &mut MpcContext, init: Vec<JumpState>) -> Vec<(ElementId, ElementId, u64)> {
    let mut states: DistVec<JumpState> = ctx.from_vec(init);
    loop {
        let pending = ctx.all_reduce(
            &states,
            0u64,
            |acc, s| acc + u64::from(s.ptr.is_some()),
            |a, b| a + b,
        );
        if pending == 0 {
            break;
        }
        let snapshot = states.clone();
        let joined = ctx.join_lookup(states, |s| s.ptr.unwrap_or(u64::MAX), &snapshot, |s| s.id);
        states = joined.map_local(|(s, found)| match (s.ptr, found) {
            (Some(_), Some(t)) => JumpState {
                id: s.id,
                ptr: t.ptr,
                dist: s.dist + t.dist,
                anchor: t.anchor,
            },
            _ => *s,
        });
        ctx.check_memory(&states, "path_distances/jump");
    }
    states.iter().map(|s| (s.id, s.anchor, s.dist)).collect()
}

/// Compute, for every degree-2 path node, its distance to both endpoints of its maximal
/// path (the paper's `CountDistances`). `O(log D)` rounds; on the default fused path
/// both directions double in the same exchange, so the loop costs
/// `join + (steps − 1) · lookup` rounds instead of two sequential jump loops.
// mpc-cost: rounds(log)
pub fn path_distances(ctx: &mut MpcContext, nodes: DistVec<PathNode>) -> DistVec<PathPosition> {
    if nodes.is_empty() {
        return ctx.empty();
    }
    if ctx.config().convergence_skip {
        path_distances_fused(ctx, nodes)
    } else {
        path_distances_legacy(ctx, nodes)
    }
}

/// Fused path: one [`MpcContext::converge`] call doubling both directions at once.
/// Probes observe pre-step states (the exchange probes before any update), which is
/// exactly the snapshot semantics of the legacy jump loop.
fn path_distances_fused(ctx: &mut MpcContext, nodes: DistVec<PathNode>) -> DistVec<PathPosition> {
    let mut states: DistVec<PathState> = nodes.map_local(seed_path_state);
    ctx.converge(
        &mut states,
        |s| s.node.id,
        |s, out| {
            // Up before down: the update pass consumes answers positionally.
            if let Some(p) = s.up_ptr {
                out.push(p);
            }
            if let Some(p) = s.down_ptr {
                out.push(p);
            }
        },
        |s| JumpAnswer {
            up_ptr: s.up_ptr,
            dist_up: s.dist_up,
            top_anchor: s.top_anchor,
            down_ptr: s.down_ptr,
            dist_down: s.dist_down,
            bottom_anchor: s.bottom_anchor,
        },
        |s, answers| {
            let mut next = answers.iter();
            if s.up_ptr.is_some() {
                let (_, found) = next.next().expect("answer per live direction");
                merge_jump(
                    &mut s.up_ptr,
                    &mut s.dist_up,
                    &mut s.top_anchor,
                    found.as_ref().map(|t| (t.up_ptr, t.dist_up, t.top_anchor)),
                );
            }
            if s.down_ptr.is_some() {
                let (_, found) = next.next().expect("answer per live direction");
                merge_jump(
                    &mut s.down_ptr,
                    &mut s.dist_down,
                    &mut s.bottom_anchor,
                    found
                        .as_ref()
                        .map(|t| (t.down_ptr, t.dist_down, t.bottom_anchor)),
                );
            }
            debug_assert!(next.next().is_none(), "all answers consumed");
        },
        "path_distances",
    );
    states.map_local(|s| PathPosition {
        id: s.node.id,
        top_anchor: s.top_anchor,
        dist_up: s.dist_up,
        bottom_anchor: s.bottom_anchor,
        dist_down: s.dist_down,
        up: s.node.up,
        out_edge: s.node.out_edge,
        child_edge: s.node.child_edge,
    })
}

/// Legacy path (selected by `convergence_skip = false`): two sequential jump loops,
/// one per direction, each a full `all_reduce` + `join_lookup` per doubling step.
fn path_distances_legacy(ctx: &mut MpcContext, nodes: DistVec<PathNode>) -> DistVec<PathPosition> {
    let payload: Vec<PathNode> = nodes.iter().copied().collect();
    let up_init: Vec<JumpState> = payload
        .iter()
        .map(|n| JumpState {
            id: n.id,
            ptr: if n.up_is_path { Some(n.up) } else { None },
            dist: 1,
            anchor: n.up,
        })
        .collect();
    let down_init: Vec<JumpState> = payload
        .iter()
        .map(|n| JumpState {
            id: n.id,
            ptr: if n.down_is_path { Some(n.down) } else { None },
            dist: 1,
            anchor: n.down,
        })
        .collect();
    let ups = jump(ctx, up_init);
    let downs = jump(ctx, down_init);
    // Both jump passes preserve the input record order (their states only ever act
    // as join *requests*), so the two result lists are aligned with the input: the
    // combination is a machine-local zip, not another join.
    let positions: Vec<PathPosition> = ups
        .into_iter()
        .zip(downs)
        .zip(payload)
        .map(|((up, down), node)| {
            debug_assert_eq!(up.0, down.0, "jump passes stay aligned");
            debug_assert_eq!(up.0, node.id, "jump passes stay aligned with the input");
            PathPosition {
                id: up.0,
                top_anchor: up.1,
                dist_up: up.2,
                bottom_anchor: down.1,
                dist_down: down.2,
                up: node.up,
                out_edge: node.out_edge,
                child_edge: node.child_edge,
            }
        })
        .collect();
    ctx.from_vec(positions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_engine::MpcConfig;
    use tree_gen::shapes;
    use tree_repr::Tree;

    fn ctx(n: usize) -> MpcContext {
        MpcContext::new(MpcConfig::new(n.max(16), 0.5))
    }

    fn ctx_legacy(n: usize) -> MpcContext {
        MpcContext::new(MpcConfig::new(n.max(16), 0.5).with_convergence_skip(false))
    }

    fn adjacency_of(tree: &Tree) -> Vec<(ElementId, Vec<ElementId>)> {
        (0..tree.len())
            .map(|v| {
                (
                    v as u64,
                    tree.children(v).iter().map(|&c| c as u64).collect(),
                )
            })
            .collect()
    }

    fn path_nodes_of(tree: &Tree) -> Vec<PathNode> {
        let mut path_nodes = Vec::new();
        for v in 0..tree.len() {
            let is_path = tree.children(v).len() == 1 && tree.parent(v).is_some();
            if !is_path {
                continue;
            }
            let up = tree.parent(v).unwrap();
            let down = tree.children(v)[0];
            path_nodes.push(PathNode {
                id: v as u64,
                up: up as u64,
                up_is_path: tree.children(up).len() == 1 && tree.parent(up).is_some(),
                down: down as u64,
                down_is_path: tree.children(down).len() == 1,
                out_edge: DirectedEdge::new(v as u64, up as u64),
                child_edge: DirectedEdge::new(down as u64, v as u64),
            });
        }
        path_nodes
    }

    #[test]
    fn subtree_sizes_exact_below_cap() {
        let tree = shapes::balanced_kary(31, 2);
        let mut c = ctx(64);
        let adj = c.from_vec(adjacency_of(&tree));
        let info = count_subtree_sizes(&mut c, adj, 100);
        let sizes = tree.subtree_sizes();
        for rec in info.into_vec() {
            assert!(!rec.heavy);
            assert_eq!(
                rec.descendants.len(),
                sizes[rec.id as usize],
                "node {}",
                rec.id
            );
        }
    }

    #[test]
    fn subtree_sizes_heavy_above_cap() {
        let tree = shapes::path(64);
        let mut c = ctx(64);
        let adj = c.from_vec(adjacency_of(&tree));
        let cap = 10;
        let info = count_subtree_sizes(&mut c, adj, cap);
        let sizes = tree.subtree_sizes();
        for rec in info.into_vec() {
            let expected_heavy = sizes[rec.id as usize] > cap;
            assert_eq!(rec.heavy, expected_heavy, "node {}", rec.id);
            if !rec.heavy {
                assert_eq!(rec.descendants.len(), sizes[rec.id as usize]);
            }
        }
    }

    #[test]
    fn subtree_size_rounds_scale_with_height_not_size() {
        // A shallow wide tree and a deep path of the same size: the shallow tree must
        // need far fewer rounds.
        let shallow = shapes::star(256);
        let deep = shapes::path(256);
        let mut rounds = Vec::new();
        for tree in [&shallow, &deep] {
            let mut c = ctx(256);
            let adj = c.from_vec(adjacency_of(tree));
            let _ = count_subtree_sizes(&mut c, adj, 8);
            rounds.push(c.metrics().rounds);
        }
        assert!(
            rounds[0] < rounds[1],
            "star {} vs path {}",
            rounds[0],
            rounds[1]
        );
    }

    #[test]
    fn subtree_sizes_fused_matches_legacy() {
        // Identical outputs under both execution strategies, and the fused loop never
        // pays more rounds than the legacy per-step join + broadcast.
        for (tree, cap) in [
            (shapes::path(100), 7),
            (shapes::balanced_kary(63, 2), 5),
            (shapes::caterpillar(40, 2), 6),
            (shapes::spider(4, 20), 9),
            (shapes::random_recursive(150, 3), 8),
        ] {
            let mut fused_ctx = ctx(256);
            let adj = fused_ctx.from_vec(adjacency_of(&tree));
            let fused = count_subtree_sizes(&mut fused_ctx, adj, cap).into_vec();

            let mut legacy_ctx = ctx_legacy(256);
            let adj = legacy_ctx.from_vec(adjacency_of(&tree));
            let legacy = count_subtree_sizes(&mut legacy_ctx, adj, cap).into_vec();

            assert_eq!(fused, legacy, "{}-node tree, cap {cap}", tree.len());
            assert!(
                fused_ctx.metrics().rounds <= legacy_ctx.metrics().rounds,
                "fused {} vs legacy {} rounds",
                fused_ctx.metrics().rounds,
                legacy_ctx.metrics().rounds
            );
        }
    }

    #[test]
    fn subtree_sizes_machines_retire_as_they_stabilize() {
        // On a broom (star glued onto a path end) the star side stabilizes in one
        // step while the path keeps doubling: the active-machine trajectory must
        // strictly drop below its starting level before the loop ends.
        let tree = shapes::path(200);
        let mut c = ctx(200);
        let adj = c.from_vec(adjacency_of(&tree));
        let _ = count_subtree_sizes(&mut c, adj, 4);
        let trace = c
            .metrics()
            .convergence
            .iter()
            .find(|t| t.name == "count_subtree_sizes")
            .expect("fused run records a trace")
            .clone();
        assert!(!trace.active_machines.is_empty());
        // Heavy nodes stabilize immediately (cap 4 on a 200-path), so participation
        // falls off after the first steps.
        assert!(
            trace.active_machines.last().unwrap() <= trace.active_machines.first().unwrap(),
            "trajectory {:?}",
            trace.active_machines
        );
    }

    #[test]
    fn path_distances_on_pure_path() {
        // Path 0→1→…→9 rooted at 0; nodes 1..=8 are degree-2 (node 9 is a leaf, node 0
        // is the root). Path nodes: 1..=8, top anchor 0, bottom anchor 9.
        let mut c = ctx(32);
        let nodes: Vec<PathNode> = (1..=8u64)
            .map(|v| PathNode {
                id: v,
                up: v - 1,
                up_is_path: v > 1,
                down: v + 1,
                down_is_path: v < 8,
                out_edge: DirectedEdge::new(v, v - 1),
                child_edge: DirectedEdge::new(v + 1, v),
            })
            .collect();
        let dv = c.from_vec(nodes);
        let out = path_distances(&mut c, dv).into_vec();
        for p in out {
            assert_eq!(p.top_anchor, 0, "node {}", p.id);
            assert_eq!(p.bottom_anchor, 9, "node {}", p.id);
            assert_eq!(p.dist_up, p.id, "node {}", p.id);
            assert_eq!(p.dist_down, 9 - p.id, "node {}", p.id);
            // Payload fields ride through untouched.
            assert_eq!(p.up, p.id - 1, "node {}", p.id);
            assert_eq!(p.out_edge, DirectedEdge::new(p.id, p.id - 1));
            assert_eq!(p.child_edge, DirectedEdge::new(p.id + 1, p.id));
        }
    }

    #[test]
    fn path_distances_multiple_paths() {
        // A spider with 3 legs of length 6: each leg's internal nodes form a separate
        // degree-2 path with the center as top anchor and the leaf as bottom anchor.
        let tree = shapes::spider(3, 6);
        let mut c = ctx(64);
        let depths = tree.depths();
        let path_nodes = path_nodes_of(&tree);
        let dv = c.from_vec(path_nodes.clone());
        let out = path_distances(&mut c, dv).into_vec();
        assert_eq!(out.len(), path_nodes.len());
        for p in &out {
            assert_eq!(p.top_anchor, 0);
            assert_eq!(p.dist_up, depths[p.id as usize] as u64);
            assert_eq!(p.dist_up + p.dist_down, 6);
            // Bottom anchor must be the leg's leaf.
            assert!(tree.children(p.bottom_anchor as usize).is_empty());
        }
        // Distinct legs have distinct bottom anchors (the path identifier property).
        let mut anchors: Vec<u64> = out.iter().map(|p| p.bottom_anchor).collect();
        anchors.sort();
        anchors.dedup();
        assert_eq!(anchors.len(), 3);
    }

    #[test]
    fn path_distances_fused_matches_legacy() {
        for tree in [
            shapes::path(120),
            shapes::spider(5, 17),
            shapes::caterpillar(60, 1),
            shapes::random_recursive(200, 11),
        ] {
            let path_nodes = path_nodes_of(&tree);
            let mut fused_ctx = ctx(256);
            let dv = fused_ctx.from_vec(path_nodes.clone());
            let fused = path_distances(&mut fused_ctx, dv).into_vec();

            let mut legacy_ctx = ctx_legacy(256);
            let dv = legacy_ctx.from_vec(path_nodes);
            let legacy = path_distances(&mut legacy_ctx, dv).into_vec();

            assert_eq!(fused, legacy, "{}-node tree", tree.len());
            assert!(
                fused_ctx.metrics().rounds <= legacy_ctx.metrics().rounds,
                "fused {} vs legacy {} rounds",
                fused_ctx.metrics().rounds,
                legacy_ctx.metrics().rounds
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let mut c = ctx(16);
        let empty_nodes: DistVec<PathNode> = c.empty();
        assert!(path_distances(&mut c, empty_nodes).is_empty());
    }
}
