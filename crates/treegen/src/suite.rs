//! The standard evaluation suite used by the Table-1 experiment and the integration
//! tests: a fixed, seeded collection of trees covering all structural regimes.

use crate::shapes::{self, TreeShape};
use tree_repr::Tree;

/// One entry of the standard suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Human-readable name (shape plus size).
    pub name: String,
    /// The tree itself.
    pub tree: Tree,
}

/// The standard suite: every named shape at the requested size, plus a few
/// diameter-controlled trees. Deterministic for a fixed `n` and `seed`.
pub fn standard_suite(n: usize, seed: u64) -> Vec<SuiteEntry> {
    let mut entries: Vec<SuiteEntry> = TreeShape::ALL
        .iter()
        .map(|shape| SuiteEntry {
            name: format!("{}-{n}", shape.name()),
            tree: shape.generate(n, seed),
        })
        .collect();
    for &d in &[8usize, 64] {
        if d < n {
            entries.push(SuiteEntry {
                name: format!("diameter-{d}-{n}"),
                tree: shapes::with_diameter(n, d, seed ^ d as u64),
            });
        }
    }
    entries
}

/// A smaller suite for fast unit tests (sizes in the hundreds).
pub fn small_suite(seed: u64) -> Vec<SuiteEntry> {
    standard_suite(256, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_covers_shapes_and_sizes() {
        let suite = standard_suite(512, 1);
        assert!(suite.len() >= 7);
        for e in &suite {
            assert_eq!(e.tree.len(), 512, "{}", e.name);
        }
        let diameters: Vec<usize> = suite.iter().map(|e| e.tree.diameter()).collect();
        let min = diameters.iter().min().unwrap();
        let max = diameters.iter().max().unwrap();
        assert!(*min <= 10, "suite lacks a low-diameter tree");
        assert!(*max >= 300, "suite lacks a high-diameter tree");
    }

    #[test]
    fn suite_is_deterministic() {
        let a = standard_suite(128, 5);
        let b = standard_suite(128, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.tree, y.tree);
        }
    }

    #[test]
    fn small_suite_is_small() {
        for e in small_suite(0) {
            assert!(e.tree.len() <= 256);
        }
    }
}
