//! Linear-Gaussian tree models for the belief-propagation application (Section 6.2).
//!
//! The paper's Section 6.2 formulates inference in a linear Gaussian tree model with
//! per-node parameters `F_j`, `c_i`, `Q_i`, `H_i`, `d_i`, `R_i` and observations `y_i`.
//! As documented in `DESIGN.md` we instantiate the scalar case (`d_x = d_y = 1`): the
//! message-passing algebra (leaf elimination, path compression, information-form fusion)
//! is identical, only the matrix inversions degenerate to scalar divisions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tree_repr::Tree;

/// Per-node parameters of a scalar linear-Gaussian tree model.
///
/// Node `i` has state `x_i ~ N(F_i · x_parent + c_i, Q_i)` (for the root, `F` is unused
/// and the prior is `N(c_i, Q_i)`), and observation `y_i ~ N(H_i · x_i + d_i, R_i)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianNode {
    /// State transition coefficient from the parent's state.
    pub f: f64,
    /// State offset.
    pub c: f64,
    /// State noise variance (must be positive).
    pub q: f64,
    /// Observation coefficient.
    pub h: f64,
    /// Observation offset.
    pub d: f64,
    /// Observation noise variance (must be positive).
    pub r: f64,
    /// The observed value `y_i`.
    pub y: f64,
}

/// A complete scalar linear-Gaussian tree model: a tree plus per-node parameters.
#[derive(Debug, Clone)]
pub struct GaussianTreeModel {
    /// The tree topology (conditioning flows parent → child).
    pub tree: Tree,
    /// Per-node parameters, indexed by node id.
    pub nodes: Vec<GaussianNode>,
}

impl GaussianTreeModel {
    /// Generate a random, well-conditioned model on the given tree.
    ///
    /// Transition and observation coefficients are bounded away from zero and variances
    /// are bounded away from zero so that all information-form updates stay numerically
    /// benign. States and observations are sampled by ancestral simulation, so `y`
    /// really is a draw from the model.
    pub fn random(tree: Tree, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = tree.len();
        let mut nodes: Vec<GaussianNode> = (0..n)
            .map(|_| GaussianNode {
                f: rng.gen_range(0.4..1.1) * if rng.gen_bool(0.5) { 1.0 } else { -1.0 },
                c: rng.gen_range(-1.0..1.0),
                q: rng.gen_range(0.2..1.5),
                h: rng.gen_range(0.5..1.5),
                d: rng.gen_range(-0.5..0.5),
                r: rng.gen_range(0.2..1.5),
                y: 0.0,
            })
            .collect();
        // Ancestral sampling of states, then observations.
        let mut state = vec![0.0f64; n];
        for v in tree.bfs_order() {
            let mean = match tree.parent(v) {
                Some(p) => nodes[v].f * state[p] + nodes[v].c,
                None => nodes[v].c,
            };
            state[v] = mean + rng.gen_range(-1.0..1.0) * nodes[v].q.sqrt();
            nodes[v].y =
                nodes[v].h * state[v] + nodes[v].d + rng.gen_range(-1.0..1.0) * nodes[v].r.sqrt();
        }
        Self { tree, nodes }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the model has no nodes (impossible after construction).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn random_model_is_deterministic_and_well_formed() {
        let t = shapes::balanced_kary(63, 2);
        let a = GaussianTreeModel::random(t.clone(), 11);
        let b = GaussianTreeModel::random(t, 11);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.len(), 63);
        for node in &a.nodes {
            assert!(node.q > 0.0);
            assert!(node.r > 0.0);
            assert!(node.f.abs() >= 0.4);
            assert!(node.y.is_finite());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let t = shapes::path(20);
        let a = GaussianTreeModel::random(t.clone(), 1);
        let b = GaussianTreeModel::random(t, 2);
        assert_ne!(a.nodes, b.nodes);
    }
}
