//! Tree shape generators.
//!
//! Every generator returns a [`Tree`] over nodes `0..n` with node `0` as the root
//! (except where documented). Shapes are chosen to cover the regimes that the paper's
//! complexity claims distinguish: diameter (deep vs. shallow), degree (bounded vs.
//! `n^{Ω(1)}`), and balance.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tree_repr::Tree;

/// A named tree shape, usable as a benchmark parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeShape {
    /// A path of `n` nodes (diameter `n-1`).
    Path,
    /// A star: one center with `n-1` leaves (diameter 2, maximum degree `n-1`).
    Star,
    /// A balanced binary tree (diameter `≈ 2 log₂ n`).
    BalancedBinary,
    /// A caterpillar: a spine path with a constant number of legs per spine node.
    Caterpillar,
    /// A broom: a path whose last node carries a large bundle of leaves.
    Broom,
    /// A uniformly random recursive tree (each node attaches to a uniform earlier node).
    RandomRecursive,
    /// A random tree whose depth is capped at `≈ log₂ n` (shallow and wide).
    ShallowWide,
}

impl TreeShape {
    /// All shapes, for exhaustive sweeps.
    pub const ALL: [TreeShape; 7] = [
        TreeShape::Path,
        TreeShape::Star,
        TreeShape::BalancedBinary,
        TreeShape::Caterpillar,
        TreeShape::Broom,
        TreeShape::RandomRecursive,
        TreeShape::ShallowWide,
    ];

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            TreeShape::Path => "path",
            TreeShape::Star => "star",
            TreeShape::BalancedBinary => "balanced-binary",
            TreeShape::Caterpillar => "caterpillar",
            TreeShape::Broom => "broom",
            TreeShape::RandomRecursive => "random-recursive",
            TreeShape::ShallowWide => "shallow-wide",
        }
    }

    /// Generate a tree of this shape with `n` nodes.
    pub fn generate(&self, n: usize, seed: u64) -> Tree {
        match self {
            TreeShape::Path => path(n),
            TreeShape::Star => star(n),
            TreeShape::BalancedBinary => balanced_kary(n, 2),
            TreeShape::Caterpillar => caterpillar((n / 4).max(1), 3),
            TreeShape::Broom => broom(n / 2, n - n / 2),
            TreeShape::RandomRecursive => random_recursive(n, seed),
            TreeShape::ShallowWide => {
                let depth = ((n as f64).log2().ceil() as usize).max(1);
                depth_capped_random(n, depth, seed)
            }
        }
    }
}

/// A path `0 → 1 → … → n-1` rooted at node 0 (node `i`'s parent is `i-1`).
pub fn path(n: usize) -> Tree {
    assert!(n > 0);
    Tree::from_parents(
        (0..n)
            .map(|v| if v == 0 { None } else { Some(v - 1) })
            .collect(),
    )
}

/// A star with center 0 and `n-1` leaves.
pub fn star(n: usize) -> Tree {
    assert!(n > 0);
    Tree::from_parents(
        (0..n)
            .map(|v| if v == 0 { None } else { Some(0) })
            .collect(),
    )
}

/// A balanced `k`-ary tree with `n` nodes (heap layout: parent of `v` is `(v-1)/k`).
pub fn balanced_kary(n: usize, k: usize) -> Tree {
    assert!(n > 0 && k >= 1);
    Tree::from_parents(
        (0..n)
            .map(|v| if v == 0 { None } else { Some((v - 1) / k) })
            .collect(),
    )
}

/// A caterpillar: a spine of `spine` nodes, each carrying `legs` leaf children.
pub fn caterpillar(spine: usize, legs: usize) -> Tree {
    assert!(spine > 0);
    let mut parents: Vec<Option<usize>> = (0..spine)
        .map(|v| if v == 0 { None } else { Some(v - 1) })
        .collect();
    for s in 0..spine {
        for _ in 0..legs {
            parents.push(Some(s));
        }
    }
    Tree::from_parents(parents)
}

/// A broom: a handle path of `handle` nodes whose last node carries `bristles` leaves.
pub fn broom(handle: usize, bristles: usize) -> Tree {
    assert!(handle > 0);
    let mut parents: Vec<Option<usize>> = (0..handle)
        .map(|v| if v == 0 { None } else { Some(v - 1) })
        .collect();
    for _ in 0..bristles {
        parents.push(Some(handle - 1));
    }
    Tree::from_parents(parents)
}

/// A spider: `legs` paths of length `leg_len` all attached to a central root.
pub fn spider(legs: usize, leg_len: usize) -> Tree {
    let mut parents: Vec<Option<usize>> = vec![None];
    for _ in 0..legs {
        let mut prev = 0usize;
        for _ in 0..leg_len {
            parents.push(Some(prev));
            prev = parents.len() - 1;
        }
    }
    Tree::from_parents(parents)
}

/// A uniformly random recursive tree: node `v ≥ 1` attaches to a uniformly random node
/// in `0..v`. Expected height is `Θ(log n)`.
pub fn random_recursive(n: usize, seed: u64) -> Tree {
    assert!(n > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    Tree::from_parents(
        (0..n)
            .map(|v| {
                if v == 0 {
                    None
                } else {
                    Some(rng.gen_range(0..v))
                }
            })
            .collect(),
    )
}

/// A random tree whose node depths never exceed `max_depth`; new nodes attach to a
/// uniformly random node of depth `< max_depth`. Diameter is at most `2 · max_depth`.
pub fn depth_capped_random(n: usize, max_depth: usize, seed: u64) -> Tree {
    assert!(n > 0 && max_depth >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut depth = vec![0usize];
    let mut eligible: Vec<usize> = vec![0];
    for _ in 1..n {
        let idx = rng.gen_range(0..eligible.len());
        let p = eligible[idx];
        let d = depth[p] + 1;
        parents.push(Some(p));
        depth.push(d);
        let v = parents.len() - 1;
        if d < max_depth {
            eligible.push(v);
        }
    }
    Tree::from_parents(parents)
}

/// A tree with `n` nodes whose diameter is close to `target_d`: a central path of
/// `target_d/2 + 1` nodes rooted at one end, with the remaining nodes attached at
/// uniformly random positions of depth `< target_d/2` so that no branch becomes deeper
/// than the central path.
pub fn with_diameter(n: usize, target_d: usize, seed: u64) -> Tree {
    assert!(n > 0);
    let radius = (target_d / 2).min(n.saturating_sub(1));
    if radius == 0 {
        return star(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut depth = vec![0usize];
    // Central path.
    for i in 1..=radius {
        parents.push(Some(i - 1));
        depth.push(i);
    }
    // Remaining nodes at depth < radius so the path stays the deepest branch.
    while parents.len() < n {
        let p = rng.gen_range(0..parents.len());
        if depth[p] >= radius {
            continue;
        }
        parents.push(Some(p));
        depth.push(depth[p] + 1);
    }
    Tree::from_parents(parents)
}

/// A "high-degree caterpillar": a spine of `spine` nodes, each carrying `legs` leaves —
/// used to exercise the degree-reduction path with degrees far above `n^{δ/2}`.
pub fn heavy_caterpillar(spine: usize, legs: usize) -> Tree {
    caterpillar(spine, legs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_and_star_extremes() {
        assert_eq!(path(100).diameter(), 99);
        assert_eq!(star(100).diameter(), 2);
        assert_eq!(star(100).max_degree(), 99);
        assert_eq!(path(1).len(), 1);
    }

    #[test]
    fn balanced_binary_depth() {
        let t = balanced_kary(1023, 2);
        assert_eq!(t.height(), 9);
        assert!(t.max_degree() <= 3);
    }

    #[test]
    fn caterpillar_and_broom_shapes() {
        let c = caterpillar(10, 3);
        assert_eq!(c.len(), 40);
        assert_eq!(c.diameter(), 11);
        let b = broom(20, 50);
        assert_eq!(b.len(), 70);
        assert_eq!(b.max_degree(), 51);
    }

    #[test]
    fn spider_shape() {
        let s = spider(5, 7);
        assert_eq!(s.len(), 36);
        assert_eq!(s.diameter(), 14);
        assert_eq!(s.max_degree(), 5);
    }

    #[test]
    fn random_recursive_is_deterministic() {
        let a = random_recursive(500, 7);
        let b = random_recursive(500, 7);
        assert_eq!(a, b);
        let c = random_recursive(500, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn depth_capped_respects_cap() {
        let t = depth_capped_random(2000, 6, 1);
        assert!(t.height() <= 6);
        assert!(t.diameter() <= 12);
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn with_diameter_hits_target() {
        for &d in &[4usize, 8, 16, 32] {
            let t = with_diameter(1000, d, 3);
            assert_eq!(t.len(), 1000);
            assert!(t.diameter() >= d / 2, "diameter too small for target {d}");
            assert!(t.diameter() <= d + 1, "diameter too large for target {d}");
        }
    }

    #[test]
    fn all_named_shapes_generate() {
        for shape in TreeShape::ALL {
            let t = shape.generate(300, 42);
            assert_eq!(t.len(), 300, "{}", shape.name());
            assert!(!shape.name().is_empty());
        }
    }
}
