//! Node input generators: weights, values, and labels for the Table-1 problems.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tree_repr::Tree;

/// Uniform random integer weights in `[lo, hi]`, one per node.
pub fn uniform_weights(n: usize, lo: u64, hi: u64, seed: u64) -> Vec<u64> {
    assert!(lo <= hi);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..=hi)).collect()
}

/// Uniform random real values in `[lo, hi)`, one per node (used e.g. by tree median).
pub fn uniform_values(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(lo < hi);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Random boolean labels with probability `p` of being `true`.
pub fn random_bools(n: usize, p: f64, seed: u64) -> Vec<bool> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_bool(p)).collect()
}

/// Random labels from `0..alphabet`, one per node.
pub fn random_labels(n: usize, alphabet: u64, seed: u64) -> Vec<u64> {
    assert!(alphabet > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..alphabet)).collect()
}

/// Leaf values for the tree median problem: every leaf of `tree` gets a value from
/// `0..range`, internal nodes get `None`.
pub fn leaf_values(tree: &Tree, range: u64, seed: u64) -> Vec<Option<i64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..tree.len())
        .map(|v| {
            if tree.children(v).is_empty() {
                Some(rng.gen_range(0..range) as i64)
            } else {
                None
            }
        })
        .collect()
}

/// A random arithmetic expression over a tree: leaves hold constants in `[-c, c]`,
/// internal nodes hold an operator (`true` = addition, `false` = multiplication).
pub fn expression_inputs(tree: &Tree, c: i64, seed: u64) -> (Vec<i64>, Vec<bool>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let consts = (0..tree.len())
        .map(|v| {
            if tree.children(v).is_empty() {
                rng.gen_range(-c..=c)
            } else {
                0
            }
        })
        .collect();
    let ops = (0..tree.len()).map(|_| rng.gen_bool(0.5)).collect();
    (consts, ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes;

    #[test]
    fn weights_in_range_and_deterministic() {
        let w = uniform_weights(1000, 5, 10, 1);
        assert!(w.iter().all(|&x| (5..=10).contains(&x)));
        assert_eq!(w, uniform_weights(1000, 5, 10, 1));
        assert_ne!(w, uniform_weights(1000, 5, 10, 2));
    }

    #[test]
    fn values_in_range() {
        let v = uniform_values(500, -1.0, 1.0, 3);
        assert!(v.iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn bools_probability_extremes() {
        assert!(random_bools(100, 1.0, 1).iter().all(|&b| b));
        assert!(random_bools(100, 0.0, 1).iter().all(|&b| !b));
    }

    #[test]
    fn labels_respect_alphabet() {
        let l = random_labels(200, 3, 9);
        assert!(l.iter().all(|&x| x < 3));
    }

    #[test]
    fn leaf_values_only_on_leaves() {
        let t = shapes::caterpillar(10, 2);
        let vals = leaf_values(&t, 100, 4);
        for (v, val) in vals.iter().enumerate() {
            assert_eq!(val.is_some(), t.children(v).is_empty());
        }
    }

    #[test]
    fn expression_inputs_shape() {
        let t = shapes::balanced_kary(31, 2);
        let (consts, ops) = expression_inputs(&t, 5, 7);
        assert_eq!(consts.len(), 31);
        assert_eq!(ops.len(), 31);
        assert!(consts.iter().all(|&c| (-5..=5).contains(&c)));
    }
}
