//! # `tree-gen` — synthetic workloads for the MPC tree-DP framework
//!
//! The paper evaluates an algorithmic framework rather than a data set; its claims are
//! parameterized by the number of nodes `n`, the diameter `D`, and the maximum degree.
//! This crate produces trees in all the structural regimes those claims distinguish
//! (deep paths, shallow wide trees, caterpillars, stars/brooms with huge degrees,
//! random recursive trees, diameter-controlled trees), together with the node inputs
//! the Table-1 problems consume (weights, values, labels, Gaussian models) and the
//! document-shaped inputs of the introduction (parentheses/XML strings).
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gaussian;
pub mod labels;
pub mod shapes;
pub mod suite;

pub use gaussian::{GaussianNode, GaussianTreeModel};
pub use shapes::TreeShape;
pub use suite::{standard_suite, SuiteEntry};
